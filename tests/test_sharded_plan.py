"""The sharding contract: ShardedPlan and ShardedCheckpointedAdjoint are
bitwise identical to the single-shard run at every rank count, and their
failure modes follow the graceful-degradation contract (see
docs/sharding.md; the chaos-registry coverage of the two ``shard.*``
fault points lives in tests/test_faults.py)."""

import multiprocessing
import warnings

import numpy as np
import pytest

from repro.apps import burgers_problem, heat_problem, wave_problem
from repro.core import adjoint_loops
from repro.errors import ShardError, ValidationError
from repro.runtime import (
    ExecutionConfig,
    ExecutionPlan,
    ShardSpec,
    ShardedCheckpointedAdjoint,
    ShardedPlan,
    compile_nests,
    faults,
    native_available,
)

_PROBLEMS = {
    "heat2d": lambda: heat_problem(2),
    "wave2d": lambda: wave_problem(2),
    "burgers1d": lambda: burgers_problem(1),
}
_BACKENDS = ["python"] + (["native"] if native_available() else [])
_FORK = "fork" in multiprocessing.get_all_start_methods()


def _kernels(prob, n, dtype=np.float64):
    bindings = prob.bindings(n, dtype=dtype)
    fwd = compile_nests([prob.primal], bindings, name=prob.name)
    rev = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), bindings,
        name=f"{prob.name}_b",
    )
    return fwd, rev


def _rotate_np(state, chain):
    for i in range(len(chain) - 1, 0, -1):
        np.copyto(state[chain[i]], state[chain[i - 1]])


def _rotate_sharded(plan, chain):
    for i in range(len(chain) - 1, 0, -1):
        plan.copy(chain[i], chain[i - 1])


def _adjoint_names(prob, rev):
    """(exchange, accumulate, compare) name sets for one reverse step."""
    seed = prob.output_name + "_b"
    targets = sorted(
        {st.target.name for rg in rev.regions for st in rg.statements}
    )
    reads = sorted(
        {acc.name for rg in rev.regions for st in rg.statements
         for acc in st.reads}
    )
    return reads, [t for t in targets if t != seed], targets


# -- the bitwise contract matrix -------------------------------------------


@pytest.mark.parametrize("backend", _BACKENDS)
@pytest.mark.parametrize("dtype", [np.float64, np.float32], ids=["f64", "f32"])
@pytest.mark.parametrize("problem", sorted(_PROBLEMS))
@pytest.mark.parametrize("nranks", [1, 2, 3, 7])
def test_forward_and_adjoint_bitwise(problem, nranks, dtype, backend):
    """Sharded forward state and adjoint gradients == single-shard run,
    bit for bit, for every rank count x dtype x problem x backend."""
    prob = _PROBLEMS[problem]()
    n = 24
    steps = 3
    fwd, rev = _kernels(prob, n, dtype)
    config = ExecutionConfig(backend=backend)
    chain = [prob.output_name, *prob.history_fields()]
    hist = list(prob.history_fields())

    ref = prob.allocate(n, rng=np.random.default_rng(0), dtype=dtype)
    plan = fwd.plan(backend=backend)
    bound = plan.bind(ref)
    for _ in range(steps):
        bound.run()
        _rotate_np(ref, chain)
    plan.close()

    state = prob.allocate(n, rng=np.random.default_rng(0), dtype=dtype)
    with ShardedPlan(
        fwd, state, nranks=nranks, halo=1, config=config, use_workers=False
    ) as sp:
        assert sp.effective_nranks == nranks
        for _ in range(steps):
            sp.step(exchange=hist)
            _rotate_sharded(sp, chain)
        got = sp.gather(chain)
    for name in chain:
        assert got[name].dtype == np.dtype(dtype)
        np.testing.assert_array_equal(got[name], ref[name])

    exchange, accumulate, compare = _adjoint_names(prob, rev)
    adj_ref = prob.allocate_state(n, seed=1, dtype=dtype)
    rplan = rev.plan(backend=backend)
    rplan.bind(adj_ref).run()
    rplan.close()

    astate = prob.allocate_state(n, seed=1, dtype=dtype)
    with ShardedPlan(
        rev, astate, nranks=nranks, halo=1, config=config, use_workers=False
    ) as ap:
        ap.step(exchange=exchange, accumulate=accumulate)
        agot = ap.gather(compare)
    for name in compare:
        np.testing.assert_array_equal(agot[name], adj_ref[name])


@pytest.mark.skipif(not _FORK, reason="no fork start method")
@pytest.mark.parametrize("nranks", [1, 2, 3, 7])
def test_forked_workers_bitwise(nranks):
    """The real multi-process path (forked workers running the bound
    plans over shared memory) preserves the forward bitwise contract."""
    prob = heat_problem(2)
    n = 24
    fwd, _ = _kernels(prob, n)
    ref = prob.allocate(n, rng=np.random.default_rng(2))
    plan = fwd.plan()
    bound = plan.bind(ref)
    for _ in range(4):
        bound.run()
        np.copyto(ref["u_1"], ref["u"])
    plan.close()

    state = prob.allocate(n, rng=np.random.default_rng(2))
    with ShardedPlan(fwd, state, nranks=nranks, halo=1) as sp:
        assert sp.multiprocess
        for _ in range(4):
            sp.step(exchange=["u_1"])
            sp.copy("u_1", "u")
        got = sp.gather(["u", "u_1"])
    np.testing.assert_array_equal(got["u"], ref["u"])
    np.testing.assert_array_equal(got["u_1"], ref["u_1"])


@pytest.mark.skipif(not _FORK, reason="no fork start method")
@pytest.mark.skipif(not native_available(), reason="no C toolchain")
def test_forked_workers_native_backend_bitwise():
    """Native-backend bound plans survive the fork (the ctypes-loaded
    .so is inherited) and stay bitwise across shards."""
    prob = heat_problem(2)
    n = 20
    fwd, _ = _kernels(prob, n)
    ref = prob.allocate(n, rng=np.random.default_rng(3))
    plan = fwd.plan(backend="native")
    bound = plan.bind(ref)
    for _ in range(3):
        bound.run()
        np.copyto(ref["u_1"], ref["u"])
    plan.close()

    state = prob.allocate(n, rng=np.random.default_rng(3))
    with ShardedPlan(
        fwd, state, nranks=3, halo=1, config=ExecutionConfig(backend="native")
    ) as sp:
        assert sp.multiprocess
        for _ in range(3):
            sp.step(exchange=["u_1"])
            sp.copy("u_1", "u")
        got = sp.gather(["u"])
    np.testing.assert_array_equal(got["u"], ref["u"])


def test_exchange_accumulate_transpose_identity():
    """<F x, y> == <x, F^T y> at the ShardedPlan layer: the forward
    exchange and the accumulate-back are adjoint linear maps on the
    concatenation of all slab storage."""
    prob = heat_problem(1)
    n = 14  # extent 15 over 4 ranks: slabs of 4,4,4,3 rows; halo 2 fits
    fwd, _ = _kernels(prob, n)

    def fresh(seed):
        sp = ShardedPlan(
            fwd, prob.allocate(n), nranks=4, halo=2, use_workers=False
        )
        r = np.random.default_rng(seed)
        for slab in sp.slabs:
            slab.arrays["u_1"][:] = r.standard_normal(
                slab.arrays["u_1"].shape
            )
        return sp

    def flat(sp):
        return np.concatenate([s.arrays["u_1"] for s in sp.slabs])

    with fresh(1) as xs, fresh(2) as ys:
        x0, y0 = flat(xs), flat(ys)
        xs.exchange(["u_1"])          # xs <- F x
        ys.accumulate_back(["u_1"])   # ys <- F^T y
        lhs = float(flat(xs) @ y0)
        rhs = float(x0 @ flat(ys))
    assert lhs == pytest.approx(rhs, rel=1e-12)


# -- validation --------------------------------------------------------------


def test_shard_spec_validates_geometry():
    with pytest.raises(ValidationError):
        ShardSpec(rank=0, own_lo=5, own_hi=4, slab_lo=0, slab_extent=10)
    with pytest.raises(ValidationError):
        ShardSpec(rank=0, own_lo=2, own_hi=4, slab_lo=3, slab_extent=5)
    with pytest.raises(ValidationError):
        ShardSpec(rank=0, own_lo=2, own_hi=6, slab_lo=1, slab_extent=3)


def test_shard_bind_rejects_global_extent_arrays():
    """A shard-planned bind names the rank and the expected slab rows
    when handed arrays of the wrong axis-0 extent."""
    prob = heat_problem(1)
    n = 20
    fwd, _ = _kernels(prob, n)
    spec = ShardSpec(rank=1, own_lo=7, own_hi=13, slab_lo=6, slab_extent=9)
    plan = ExecutionPlan.build(fwd, ExecutionConfig(), shard=spec)
    with pytest.raises(ValidationError, match=r"rank 1.*slab"):
        plan.bind(prob.allocate(n))  # global extent 21, slab wants 9


def test_sharded_plan_halo_validation_names_rank():
    prob = heat_problem(1)
    n = 8  # extent 9 over 5 ranks: sizes 2,2,2,2,1 -> rank 4 owns 1 row
    fwd, _ = _kernels(prob, n)
    with pytest.raises(ValidationError, match=r"rank 4 of 5"):
        ShardedPlan(
            fwd, prob.allocate(n), nranks=5, halo=2, use_workers=False
        )


def test_sharded_plan_rank_clamp_warns_once_and_is_recorded():
    prob = heat_problem(1)
    n = 8  # extent 9
    fwd, _ = _kernels(prob, n)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with ShardedPlan(
            fwd, prob.allocate(n), nranks=20, halo=1, use_workers=False
        ) as sp:
            assert sp.nranks == 20
            assert sp.effective_nranks == 9
            assert len(sp.slabs) == 9
    clamp = [w for w in caught if "using 9 rank(s)" in str(w.message)]
    assert len(clamp) == 1


def test_sharded_plan_rejects_unknown_kernel_key_and_bad_shapes():
    prob = heat_problem(1)
    fwd, _ = _kernels(prob, 10)
    state = prob.allocate(10)
    with ShardedPlan(fwd, state, nranks=2, halo=1, use_workers=False) as sp:
        with pytest.raises(ValidationError, match="unknown kernel key"):
            sp.step("nope")
    with pytest.raises(ValidationError, match="share one shape"):
        ShardedPlan(
            fwd, {"u": np.zeros(11), "u_1": np.zeros(12)},
            nranks=2, halo=1, use_workers=False,
        )
    with pytest.raises(ValidationError, match="not in the sharded"):
        ShardedPlan(
            fwd, {"u": np.zeros(11)}, nranks=2, halo=1, use_workers=False
        )


# -- failure modes -----------------------------------------------------------


def test_exchange_failure_degrades_bitwise_mid_run():
    """A halo-copy failure mid-run falls back to single-shard execution:
    one warning, permanent, and the remaining steps continue bitwise on
    the caller's arrays."""
    prob = heat_problem(2)
    n = 16
    fwd, _ = _kernels(prob, n)
    ref = prob.allocate(n, rng=np.random.default_rng(5))
    plan = fwd.plan()
    bound = plan.bind(ref)
    for _ in range(3):
        bound.run()
        np.copyto(ref["u_1"], ref["u"])
    plan.close()

    state = prob.allocate(n, rng=np.random.default_rng(5))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        # 3 ranks -> 2 exchange checks per step; skip=2 fires on the
        # first pair of the SECOND step, mid-run.
        with faults.inject("shard.exchange", skip=2) as inj:
            with ShardedPlan(
                fwd, state, nranks=3, halo=1, use_workers=False
            ) as sp:
                for _ in range(3):
                    sp.step(exchange=["u_1"])
                    sp.copy("u_1", "u")
                assert sp.degraded
                got = sp.gather(["u", "u_1"])
    assert inj.fired("shard.exchange") == 1
    degraded = [w for w in caught if "degraded" in str(w.message)]
    assert len(degraded) == 1
    np.testing.assert_array_equal(got["u"], ref["u"])
    # Degraded mode runs on the caller's global arrays directly.
    np.testing.assert_array_equal(state["u"], ref["u"])


@pytest.mark.skipif(not _FORK, reason="no fork start method")
def test_dead_worker_degrades_bitwise():
    """A worker found dead by the pre-dispatch heartbeat degrades to a
    single shard with the run still bitwise-identical."""
    prob = heat_problem(2)
    n = 16
    fwd, _ = _kernels(prob, n)
    ref = prob.allocate(n, rng=np.random.default_rng(6))
    plan = fwd.plan()
    bound = plan.bind(ref)
    for _ in range(2):
        bound.run()
        np.copyto(ref["u_1"], ref["u"])
    plan.close()

    state = prob.allocate(n, rng=np.random.default_rng(6))
    with ShardedPlan(fwd, state, nranks=3, halo=1) as sp:
        assert sp.multiprocess
        sp.step(exchange=["u_1"])
        sp.copy("u_1", "u")
        victim = sp._workers[1]
        victim.kill()
        victim.join()  # deterministic: the heartbeat must see it dead
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sp.step(exchange=["u_1"])
        sp.copy("u_1", "u")
        assert sp.degraded and not sp.multiprocess
        got = sp.gather(["u", "u_1"])
    degraded = [w for w in caught if "degraded" in str(w.message)]
    assert len(degraded) == 1
    np.testing.assert_array_equal(got["u"], ref["u"])


@pytest.mark.skipif(not _FORK, reason="no fork start method")
def test_worker_failure_mid_step_raises_typed_shard_error():
    """A kernel failure inside a worker (after dispatch) cannot degrade
    — some ranks may have advanced — so it raises ShardError naming the
    rank.  The injector is armed before construction so the forked
    children inherit it."""
    prob = heat_problem(2)
    n = 12
    fwd, _ = _kernels(prob, n)
    state = prob.allocate(n, rng=np.random.default_rng(7))
    with faults.inject("bound.run"):
        with ShardedPlan(fwd, state, nranks=2, halo=1) as sp:
            assert sp.multiprocess
            with pytest.raises(ShardError) as excinfo:
                sp.step(exchange=["u_1"])
    assert excinfo.value.rank == 0
    assert "rank 0" in str(excinfo.value)


# -- sharded checkpointed adjoints ------------------------------------------


@pytest.mark.parametrize("nranks", [2, 3])
@pytest.mark.parametrize("problem", ["heat2d", "wave2d"])
def test_sharded_checkpointed_adjoint_bitwise(problem, nranks):
    """One revolve schedule driven across shards == the unsharded
    CheckpointedAdjointPlan, bitwise, including constant-field
    gradients (wave2d's velocity model)."""
    prob = _PROBLEMS[problem]()
    n = 12
    steps, snaps = 7, 3
    shape = prob.array_shape(n)
    history = prob.history_fields()

    chk = prob.checkpointed_adjoint(n, steps=steps, snaps=snaps)
    fwd, rev = _kernels(prob, n)
    # The same deterministic constant fields apps.checkpointed_adjoint
    # allocates (seed 0, scaled like Problem.allocate).
    rng = np.random.default_rng(0)
    constants = {
        name: rng.standard_normal(shape) * 0.1
        for name in prob.constant_fields()
    }
    sharded = ShardedCheckpointedAdjoint(
        fwd, rev, shape,
        nranks=nranks, halo=1, steps=steps, snaps=snaps,
        output=prob.output_name, history=history, constants=constants,
        adjoint_map=prob.adjoint_name_map(), use_workers=False,
    )
    r = np.random.default_rng(9)
    state0 = [r.standard_normal(shape) * 0.1 for _ in history]
    seed = r.standard_normal(shape) * 0.1

    ref_final = chk.run_forward([a.copy() for a in state0])
    got_final = sharded.run_forward([a.copy() for a in state0])
    for ref_arr, got_arr in zip(ref_final, got_final):
        np.testing.assert_array_equal(got_arr, ref_arr)

    ref_grad = chk.adjoint([a.copy() for a in state0], seed)
    got_grad = sharded.adjoint([a.copy() for a in state0], seed)
    assert sorted(got_grad) == sorted(ref_grad)
    for name in got_grad:
        np.testing.assert_array_equal(got_grad[name], ref_grad[name])

    assert sharded.evaluation_cost == chk.evaluation_cost
    sharded.close()
    chk.close()


@pytest.mark.skipif(not _FORK, reason="no fork start method")
def test_sharded_checkpointed_adjoint_with_workers():
    """The sharded revolve sweep stays bitwise when the shards execute
    in forked worker processes."""
    prob = heat_problem(2)
    n = 12
    steps, snaps = 6, 3
    shape = prob.array_shape(n)
    chk = prob.checkpointed_adjoint(n, steps=steps, snaps=snaps)
    fwd, rev = _kernels(prob, n)
    sharded = ShardedCheckpointedAdjoint(
        fwd, rev, shape, nranks=2, halo=1, steps=steps, snaps=snaps,
        output=prob.output_name, history=prob.history_fields(),
        adjoint_map=prob.adjoint_name_map(),
    )
    assert sharded._plan.multiprocess
    r = np.random.default_rng(4)
    state0 = [r.standard_normal(shape) * 0.1]
    seed = r.standard_normal(shape) * 0.1
    ref_grad = chk.adjoint([a.copy() for a in state0], seed)
    got_grad = sharded.adjoint([a.copy() for a in state0], seed)
    for name in got_grad:
        np.testing.assert_array_equal(got_grad[name], ref_grad[name])
    sharded.close()
    chk.close()
