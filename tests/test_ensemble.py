"""Ensemble execution tests: batched runs equal looped runs, bit for bit.

The contract: an :class:`~repro.runtime.ensemble.EnsemblePlan` over
stacked member states produces, for every member, exactly the bits a
single-scenario :class:`~repro.runtime.bound.BoundPlan` run produces —
across applications, backends, plan disciplines, dtypes, worker counts
and chunkings.  Plus unit coverage of the work-stealing scheduler and
the binding/validation surface.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
import sympy as sp

from repro.apps import burgers_problem, heat_problem, wave_problem
from repro.core import adjoint_loops, make_loop_nest
from repro.runtime import (
    Bindings,
    EnsemblePlan,
    KernelError,
    WorkStealingScheduler,
    batch_safe_statement,
    compile_nests,
    native_available,
    stack_arrays,
)

PROBLEMS = {
    "heat2d": (lambda: heat_problem(2), 12),
    "wave2d": (lambda: wave_problem(2), 10),
    "burgers1d": (lambda: burgers_problem(1), 24),
}

BACKENDS = ["python"] + (["native"] if native_available() else [])


def _kernel(prob, n, dtype=np.float64):
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    return compile_nests(nests, prob.bindings(n, dtype=dtype), name="ens_test")


def _member_states(prob, n, members, dtype=np.float64):
    return [prob.allocate_state(n, seed=m, dtype=dtype) for m in range(members)]


def _looped_reference(plan, states, steps=1):
    """Single-scenario bound runs, the reference the ensemble must match."""
    arrays = [{k: v.copy() for k, v in st.items()} for st in states]
    for member in arrays:
        bound = plan.bind(member)
        for _ in range(steps):
            bound.run()
    return arrays


def _assert_members_match(ensemble, refs):
    for m, ref in enumerate(refs):
        views = ensemble.member_arrays(m)
        for name in ref:
            assert ref[name].tobytes() == views[name].tobytes(), (
                f"member {m} array {name} diverged from the looped run"
            )


# -- bitwise identity across apps x backends x dtypes -------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dtype", [np.float64, np.float32], ids=["f64", "f32"])
@pytest.mark.parametrize("prob_name", sorted(PROBLEMS))
def test_batched_equals_looped(prob_name, dtype, backend):
    factory, n = PROBLEMS[prob_name]
    prob = factory()
    kernel = _kernel(prob, n, dtype=dtype)
    plan = kernel.plan(backend=backend)
    states = _member_states(prob, n, members=5, dtype=dtype)
    refs = _looped_reference(plan, states, steps=3)
    with EnsemblePlan(plan, stack_arrays(states)) as ensemble:
        for _ in range(3):  # first run records replay tapes, then replays
            ensemble.run()
        _assert_members_match(ensemble, refs)


@pytest.mark.parametrize("backend", BACKENDS)
def test_batched_equals_looped_threaded_and_tiled_plans(backend):
    """Threaded/tiled member plans replay their decomposition per member."""
    prob = heat_problem(2)
    kernel = _kernel(prob, 12)
    states = _member_states(prob, 12, members=4)
    for plan_kwargs in (
        dict(num_threads=2, min_block_iterations=1),
        dict(tile_shape=(4, 4)),
    ):
        plan = kernel.plan(backend=backend, **plan_kwargs)
        refs = _looped_reference(plan, states, steps=2)
        with EnsemblePlan(plan, stack_arrays(states)) as ensemble:
            ensemble.run()
            ensemble.run()
            _assert_members_match(ensemble, refs)


@pytest.mark.parametrize("workers,chunks", [(1, None), (2, None), (3, 5), (2, 4)])
def test_worker_and_chunk_count_never_change_results(workers, chunks):
    """Scheduler determinism: results are bitwise independent of threading."""
    prob = wave_problem(2)
    kernel = _kernel(prob, 10)
    plan = kernel.plan()
    states = _member_states(prob, 10, members=7)
    refs = _looped_reference(plan, states, steps=2)
    with EnsemblePlan(
        plan, stack_arrays(states), workers=workers, chunks=chunks
    ) as ensemble:
        ensemble.run()
        ensemble.run()
        _assert_members_match(ensemble, refs)


@pytest.mark.skipif(not native_available(), reason="no C toolchain")
def test_native_ensemble_chains_whole_step_into_one_call():
    """A fully native ensemble binds every statement natively and chains."""
    prob = heat_problem(2)
    kernel = _kernel(prob, 12)
    plan = kernel.plan(backend="native")
    states = _member_states(prob, 12, members=6)
    with EnsemblePlan(plan, stack_arrays(states)) as ensemble:
        assert ensemble.native_statement_count == 6 * plan.bind(
            {k: v.copy() for k, v in states[0].items()}
        ).statement_count
        assert ensemble.batched_statement_count == 0
        assert ensemble.member_statement_count == 0
        # all statements of all members collapsed into one chain runnable
        (chunk,) = ensemble._chunks
        assert len(chunk.items) == 1


# -- per-member fallback for non-elementwise expressions ----------------------


def _user_function_kernel(fn, n=16):
    """A kernel whose RHS calls a user-bound (non-batchable) function."""
    i = sp.Symbol("i", integer=True)
    nsym = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    f = sp.Function("f")
    nest = make_loop_nest(
        lhs=r(i),
        rhs=f(u(i)) + u(i - 1),
        counters=[i],
        bounds={i: [1, nsym - 1]},
        name="userfn",
    )
    bindings = Bindings(sizes={nsym: n}, functions={"f": fn})
    return compile_nests([nest], bindings, name="userfn"), n


def test_user_bound_functions_fall_back_per_member():
    """A member-mixing implementation must never see stacked operands."""

    def squish(x):  # correct elementwise for one member ...
        # ... but would be wrong batched *if* it reduced; make sure the
        # runtime never hands it a member-stacked operand at all.
        assert x.ndim == 1, "user function saw a batched operand"
        return np.tanh(x)

    kernel, n = _user_function_kernel(squish)
    plan = kernel.plan()
    states = [
        {
            "u": np.random.default_rng(m).standard_normal(n + 1),
            "r": np.zeros(n + 1),
        }
        for m in range(4)
    ]
    refs = _looped_reference(plan, states, steps=2)
    with EnsemblePlan(plan, stack_arrays(states)) as ensemble:
        assert ensemble.batched_statement_count == 0
        assert ensemble.member_statement_count == 4
        ensemble.run()
        ensemble.run()
        _assert_members_match(ensemble, refs)


def test_batch_safe_statement_verdicts():
    heat = heat_problem(2)
    kernel = _kernel(heat, 10)
    for region in kernel.regions:
        for st in region.statements:
            assert batch_safe_statement(st)  # linear stencil: pure ufuncs
    burgers = burgers_problem(1)
    bkernel = _kernel(burgers, 16)
    assert all(
        batch_safe_statement(st)
        for region in bkernel.regions
        for st in region.statements
    )  # Min/Max/Heaviside are elementwise
    ukernel, _ = _user_function_kernel(np.tanh)
    verdicts = [
        batch_safe_statement(st)
        for region in ukernel.regions
        for st in region.statements
    ]
    assert not all(verdicts)  # the user-function statement is gated


# -- binding surface ----------------------------------------------------------


def test_stack_arrays_validation_and_shape():
    a = {"u": np.zeros((3, 3)), "v": np.ones(2)}
    b = {"u": np.ones((3, 3)), "v": np.zeros(2)}
    batched = stack_arrays([a, b])
    assert batched["u"].shape == (2, 3, 3)
    assert batched["v"].shape == (2, 2)
    assert batched["u"].flags.c_contiguous
    batched["u"][0] += 1.0  # copies: inputs unaliased
    assert a["u"].sum() == 0.0
    with pytest.raises(ValueError, match="at least one"):
        stack_arrays([])
    with pytest.raises(ValueError, match="member 1"):
        stack_arrays([a, {"u": np.zeros((3, 3))}])
    # np.stack would silently promote mixed dtypes, breaking the
    # bitwise-identity contract — must fail loudly instead
    with pytest.raises(ValueError, match="must match exactly"):
        stack_arrays([a, {"u": np.ones((3, 3), np.float32), "v": b["v"]}])
    with pytest.raises(ValueError, match="must match exactly"):
        stack_arrays([a, {"u": np.ones((2, 3)), "v": b["v"]}])


def test_ensemble_rejects_bad_batches_and_configs():
    prob = heat_problem(1)
    kernel = _kernel(prob, 10)
    plan = kernel.plan()
    states = _member_states(prob, 10, members=3)
    batched = stack_arrays(states)
    with pytest.raises(KernelError, match="missing kernel arrays"):
        EnsemblePlan(plan, {"u": batched["u"]})
    ragged = dict(batched)
    ragged["u_b"] = batched["u_b"][:2]
    with pytest.raises(KernelError, match="leading member axis"):
        EnsemblePlan(plan, ragged)
    with pytest.raises(ValueError, match="workers"):
        EnsemblePlan(plan, batched, workers=0)
    scatter_plan = compile_nests(
        [tapenade_like_nest()], prob.bindings(10), name="ens_scatter"
    ).plan(scatter=True)
    with pytest.raises(KernelError, match="scatter"):
        EnsemblePlan(scatter_plan, batched)


def tapenade_like_nest():
    """A minimal pure-'+=' nest a scatter plan accepts."""
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u_b, r_b = sp.Function("u_b"), sp.Function("r_b")
    return make_loop_nest(
        lhs=u_b(i),
        rhs=2.0 * r_b(i),
        counters=[i],
        bounds={i: [1, n - 1]},
        op="+=",
        name="scatterish",
    )


def test_member_arrays_are_live_views():
    prob = heat_problem(1)
    kernel = _kernel(prob, 10)
    plan = kernel.plan()
    states = _member_states(prob, 10, members=2)
    with EnsemblePlan(plan, stack_arrays(states)) as ensemble:
        views = ensemble.member_arrays(1)
        views["u_1_b"][...] = 0.25  # in-place writes update the ensemble
        refs = [dict(states[0]), {k: v.copy() for k, v in states[1].items()}]
        refs[1]["u_1_b"][...] = 0.25
        refs = _looped_reference(plan, refs)
        ensemble.run()
        _assert_members_match(ensemble, refs)
        with pytest.raises(IndexError):
            ensemble.member_arrays(2)
        with pytest.raises(IndexError):
            ensemble.member_arrays(-1)


def test_plan_ensemble_entry_point():
    prob = heat_problem(1)
    kernel = _kernel(prob, 10)
    states = _member_states(prob, 10, members=3)
    with kernel.plan().ensemble(stack_arrays(states), workers=2) as ensemble:
        assert ensemble.members == 3
        assert ensemble.workers == 2
        ensemble.run()


# -- the work-stealing scheduler ----------------------------------------------


def test_scheduler_runs_every_task_and_is_reusable():
    with WorkStealingScheduler(3) as sched:
        for _ in range(3):  # generations reuse the persistent workers
            hits = []
            lock = threading.Lock()

            def task(i):
                with lock:
                    hits.append(i)

            sched.run([lambda i=i: task(i) for i in range(17)])
            assert sorted(hits) == list(range(17))


def test_scheduler_steals_from_loaded_workers():
    """An unbalanced batch finishes on the thief, not behind the owner."""
    with WorkStealingScheduler(2) as sched:
        ran_by = {}
        lock = threading.Lock()

        def slow():
            ran_by[threading.get_ident()] = ran_by.get(
                threading.get_ident(), 0
            ) + 1
            time.sleep(0.05)

        def fast(i):
            with lock:
                ran_by[threading.get_ident()] = ran_by.get(
                    threading.get_ident(), 0
                ) + 1

        # Round-robin seeds slow tasks onto worker 0 and fast onto 1;
        # worker 1 must steal worker 0's backlog.
        tasks = []
        for i in range(4):
            tasks.append(slow)
            tasks.append(lambda i=i: fast(i))
        start = time.perf_counter()
        sched.run(tasks)
        elapsed = time.perf_counter() - start
        assert sum(ran_by.values()) == 8
        # 4 x 0.05s of slow work over 2 workers: stealing keeps the
        # critical path near 0.1s; a no-steal schedule would be 0.2s.
        assert elapsed < 0.19, f"stealing failed to rebalance ({elapsed:.3f}s)"


def test_scheduler_propagates_task_exceptions():
    with WorkStealingScheduler(2) as sched:
        done = []

        def boom():
            raise RuntimeError("member 3 diverged")

        with pytest.raises(RuntimeError, match="member 3 diverged"):
            sched.run([boom, lambda: done.append(1), lambda: done.append(2)])
        # Tasks already running when the failure was recorded complete;
        # tasks still queued are cancelled.  Either way the batch
        # accounts for every submitted task.
        assert len(done) + sched.last_cancelled == 2
        sched.run([lambda: done.append(3)])  # scheduler survives the failure
        assert 3 in done
        assert sched.last_cancelled == 0


def test_scheduler_close_is_idempotent_and_final():
    sched = WorkStealingScheduler(2)
    sched.run([lambda: None])
    sched.close()
    sched.close()
    with pytest.raises(RuntimeError, match="closed"):
        sched.run([lambda: None])
    with pytest.raises(ValueError):
        WorkStealingScheduler(0)


# -- ensemble steady state ----------------------------------------------------


def test_fused_steady_state_is_allocation_free():
    """Pure-ufunc ensembles replay with zero array allocations."""
    import tracemalloc

    prob = heat_problem(2)
    kernel = _kernel(prob, 12)
    plan = kernel.plan()
    states = _member_states(prob, 12, members=8)
    with EnsemblePlan(plan, stack_arrays(states)) as ensemble:
        assert ensemble.member_statement_count == 0
        for _ in range(3):
            ensemble.run()
        tracemalloc.start()
        before = tracemalloc.get_traced_memory()[0]
        for _ in range(5):
            ensemble.run()
        current = tracemalloc.get_traced_memory()[0]
        tracemalloc.stop()
        assert current - before < 2048, (
            f"steady-state ensemble allocated {current - before} bytes"
        )


def test_measure_ensemble_record_contract():
    from repro.experiments.steady import measure_ensemble

    prob = heat_problem(1)
    kernel = _kernel(prob, 12)
    plan = kernel.plan()
    states = _member_states(prob, 12, members=4)
    record, ensemble = measure_ensemble(plan, states, reps=3)
    with ensemble:
        assert record["members"] == 4
        assert record["bitwise_identical"] is True
        assert record["ensemble_us_per_member_step"] > 0
        assert record["loop_us_per_member_step"] > 0
        assert (
            record["batched_statements"]
            + record["native_statements"]
            + record["member_statements"]
            == ensemble.statement_count
        )
        # the ensemble is left one application past the base state
        refs = _looped_reference(plan, states)
        _assert_members_match(ensemble, refs)
