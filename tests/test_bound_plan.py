"""BoundPlan tests: allocation-free steady-state runs, bitwise identical.

The seed serial path — ``region.execute`` over every region, rebuilding
views and temporaries per call — is the reference; every bound
discipline (serial, threaded, tiled, fused, scatter) must reproduce it
bit for bit, on first run and on steady-state replay, for every app and
dtype.  Binding resolves views against concrete array *objects*, so the
suite also pins down the invalidation contract: replacing an array in
the mapping rebinds, updating values in place does not.
"""

import tracemalloc

import numpy as np
import pytest
import sympy as sp

from repro.apps import heat_problem, wave_problem
from repro.baselines.scatter import tapenade_style_adjoint
from repro.core import adjoint_loops, make_loop_nest
from repro.runtime import Bindings, compile_nests


def _seed_serial(kernel, arrays):
    """The pre-plan seed execution path: per-call views and temporaries."""
    for region in kernel.regions:
        region.execute(arrays)


def _adjoint_case(prob, n, rng, dtype):
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(n, dtype=dtype))
    base = prob.allocate(n, rng=rng, dtype=dtype)
    base.update(prob.allocate_adjoints(n, rng=rng, dtype=dtype))
    return kernel, base


CONFIGS = [
    ("serial", dict()),
    ("threads4", dict(num_threads=4, min_block_iterations=1)),
    ("tiled", dict(tile_shape=(6, 6, 6))),
    (
        "tiled+threads2",
        dict(num_threads=2, tile_shape=(6, 6, 6), min_block_iterations=1),
    ),
]


@pytest.mark.parametrize("dtype", [np.float64, np.float32], ids=["f64", "f32"])
@pytest.mark.parametrize("label,config", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_bound_bitwise_identical_to_seed_serial(
    any_problem, rng, dtype, label, config
):
    """Bound runs equal the seed serial path bitwise, first run and replay."""
    prob, n = any_problem
    kernel, base = _adjoint_case(prob, n, rng, dtype)

    ref = {k: v.copy() for k, v in base.items()}
    _seed_serial(kernel, ref)

    got = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(**config)
    try:
        bound = plan.bind(got)
        bound.run()
        for name in ref:
            np.testing.assert_array_equal(ref[name], got[name])
        # Steady-state replay (in-place value reset keeps the binding
        # valid) must stay bitwise identical to the first run.
        for name, arr in base.items():
            got[name][...] = arr
        bound.run()
        for name in ref:
            np.testing.assert_array_equal(ref[name], got[name])
    finally:
        plan.close()


@pytest.mark.parametrize("threads", [1, 4])
def test_bound_scatter_matches_unbound(rng, threads):
    """Bound scatter (persistent scratch) equals the unbound scatter path.

    Both merge thread-private scratch in deterministic task order, so
    threaded scatter runs are bitwise reproducible and comparable.
    """
    prob = wave_problem(2)
    n = 16
    scat = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    kernel = compile_nests([scat], prob.bindings(n))
    base = prob.allocate(n, rng=rng)
    base.update(prob.allocate_adjoints(n, rng=rng))

    unbound = {k: v.copy() for k, v in base.items()}
    bound_arrays = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(num_threads=threads, scatter=True, min_block_iterations=1)
    try:
        plan.run_unbound(unbound)
        bound = plan.bind(bound_arrays)
        bound.run()
        for name in base:
            np.testing.assert_array_equal(unbound[name], bound_arrays[name])
        # Replay with persistent (re-zeroed) scratch: still identical.
        for name, arr in base.items():
            bound_arrays[name][...] = arr
        bound.run()
        for name in base:
            np.testing.assert_array_equal(unbound[name], bound_arrays[name])
    finally:
        plan.close()


def test_bound_statement_with_bare_counter_matches_seed(rng):
    """Cached/materialised counter arrays reproduce per-call aranges."""
    i = sp.Symbol("i", integer=True)
    j = sp.Symbol("j", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = make_loop_nest(
        lhs=r(i, j),
        rhs=u(i, j) * i + 0.5 * j,
        counters=[i, j],
        bounds={i: [0, n], j: [0, n]},
    )
    kernel = compile_nests([nest], Bindings(sizes={n: 19}), cache=False)
    base = {"u": rng.standard_normal((20, 20)), "r": np.zeros((20, 20))}
    ref = {k: v.copy() for k, v in base.items()}
    _seed_serial(kernel, ref)
    got = {k: v.copy() for k, v in base.items()}
    bound = kernel.plan().bind(got)
    bound.run()
    np.testing.assert_array_equal(ref["r"], got["r"])
    got["r"][...] = 0.0
    bound.run()
    np.testing.assert_array_equal(ref["r"], got["r"])


def test_steady_state_run_performs_no_array_allocations():
    """Acceptance: zero NumPy array allocations per steady-state run.

    After warm-up (which sizes the replay-tape buffers), repeated
    ``BoundPlan.run`` calls allocate no array data: net traced memory
    does not grow, and the transient peak stays far below the smallest
    full-box temporary the allocating path would create per statement.
    """
    prob = heat_problem(2)
    n = 32
    kernel, base = _adjoint_case(prob, n, np.random.default_rng(3), np.float64)
    arrays = {k: v.copy() for k, v in base.items()}
    bound = kernel.plan().bind(arrays)
    # Every statement of this gather kernel must take the in-place path;
    # a silent fallback to allocating eval would void the assertion.
    assert bound.inplace_statement_count == bound.statement_count > 0
    bound.run()
    bound.run()  # steady state reached

    tracemalloc.start()
    tracemalloc.reset_peak()
    before = tracemalloc.get_traced_memory()[0]
    for _ in range(5):
        bound.run()
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    smallest_box_bytes = (n - 4) * (n - 4) * 8  # smallest interior temp
    assert current - before == 0, "steady-state run retained memory"
    assert peak - before < smallest_box_bytes, (
        f"steady-state run transiently allocated {peak - before} bytes "
        f"(>= one {smallest_box_bytes}-byte box temporary)"
    )


def test_plan_run_rebinds_after_array_replacement(rng):
    """Replacing an array object in the dict invalidates stale views."""
    prob = heat_problem(1)
    n = 24
    kernel, base = _adjoint_case(prob, n, rng, np.float64)
    arrays = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan()
    plan.run(arrays)  # first sighting: unbound
    plan.run(arrays)  # second sighting: binds and memoises
    first = plan.bound_for(arrays)
    assert first.matches(arrays)

    # Replace every array with a *new object* holding new values.
    rng2 = np.random.default_rng(999)
    base2 = prob.allocate(n, rng=rng2)
    base2.update(prob.allocate_adjoints(n, rng=rng2))
    for name, arr in base2.items():
        arrays[name] = arr.copy()
    assert not first.matches(arrays)

    ref = {k: v.copy() for k, v in base2.items()}
    _seed_serial(kernel, ref)
    snapshot = {k: v.copy() for k, v in arrays.items()}
    plan.run(arrays)  # stale binding detected: must not use old views
    for name in ref:
        np.testing.assert_array_equal(ref[name], arrays[name])
    for name, arr in snapshot.items():
        arrays[name][...] = arr
    plan.run(arrays)  # rebinds for the replaced arrays
    assert plan.bound_for(arrays) is not first
    for name in ref:
        np.testing.assert_array_equal(ref[name], arrays[name])


def test_plan_run_memoises_binding_for_stable_arrays(rng):
    """Identity-stable arrays dicts reuse one binding across runs."""
    prob = heat_problem(1)
    n = 24
    kernel, base = _adjoint_case(prob, n, rng, np.float64)
    arrays = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan()
    plan.close()  # plans memoise on cached kernels: drop earlier bindings
    plan.run(arrays)  # first sighting: unbound
    assert not plan._bound_memo
    plan.run(arrays)  # second sighting: binds
    bound = plan.bound_for(arrays)
    arrays[next(iter(arrays))][...] *= 1.0  # in-place update: still valid
    plan.run(arrays)
    assert plan.bound_for(arrays) is bound


def test_bind_rejects_missing_array(rng):
    prob = heat_problem(1)
    kernel, base = _adjoint_case(prob, 16, rng, np.float64)
    arrays = {k: v.copy() for k, v in base.items()}
    arrays.pop("u_1_b")
    with pytest.raises(KeyError):
        kernel.plan().bind(arrays)
