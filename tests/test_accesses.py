"""Unit tests for repro.core.accesses (offset extraction, Section 3.4 forms)."""

import sympy as sp
import pytest

from repro.core.accesses import (
    InvalidAccessError,
    classify_applied,
    extract_access,
    is_index_like_access,
    offset_vector,
)

i, j, k = sp.symbols("i j k", integer=True)
u = sp.Function("u")
f = sp.Function("f")


def test_extract_simple_offsets():
    pat = extract_access(u(i - 1, j + 2), [i, j])
    assert pat.name == "u"
    assert pat.counters == (i, j)
    assert pat.offsets == (-1, 2)


def test_extract_zero_offsets():
    pat = extract_access(u(i, j), [i, j])
    assert pat.offsets == (0, 0)


def test_offset_vector_alignment():
    assert offset_vector(u(i - 1, j + 2), [i, j]) == (-1, 2)
    # Permuted subset: the k dimension is constant for this access.
    assert offset_vector(u(j + 1), [i, j, k]) == (0, 1, 0)


def test_permuted_counters():
    pat = extract_access(u(j, i + 3), [i, j])
    assert pat.counters == (j, i)
    assert pat.offsets == (0, 3)
    assert pat.offset_for([i, j]) == (3, 0)


def test_rejects_two_counters_in_one_slot():
    with pytest.raises(InvalidAccessError):
        extract_access(u(i + j), [i, j])


def test_rejects_scaled_counter():
    with pytest.raises(InvalidAccessError):
        extract_access(u(2 * i), [i])


def test_rejects_symbolic_offset():
    m = sp.Symbol("m")
    with pytest.raises(InvalidAccessError):
        extract_access(u(i + m), [i])


def test_rejects_counterless_index():
    with pytest.raises(InvalidAccessError):
        extract_access(u(sp.Integer(3)), [i])


def test_rejects_repeated_counter():
    with pytest.raises(InvalidAccessError):
        extract_access(u(i, i + 1), [i, j])


def test_is_index_like_access():
    assert is_index_like_access(u(i - 1), [i])
    assert not is_index_like_access(f(u(i - 1), u(i)), [i])


def test_classify_separates_calls_and_accesses():
    expr = f(u(i - 1), u(i)) + u(i + 1)
    accesses, calls = classify_applied(expr, [i])
    assert u(i + 1) in accesses and u(i - 1) in accesses and u(i) in accesses
    assert calls == [f(u(i - 1), u(i))]


def test_classify_rejects_malformed_access():
    with pytest.raises(InvalidAccessError):
        classify_applied(u(2 * i) + u(i), [i])


def test_classify_allows_scalar_uninterpreted():
    g = sp.Function("g")
    C = sp.Symbol("C")
    accesses, calls = classify_applied(g(C) * u(i), [i])
    assert accesses == [u(i)]
    assert calls == [g(C)]


def test_rank_property():
    assert extract_access(u(i, j, k), [i, j, k]).rank == 3
