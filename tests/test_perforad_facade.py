"""The original PerforAD input scripts (Figures 4 and 6) must run
against the compatibility facade."""

import io

import sympy as sp

from repro.perforad import LoopNest, makeLoopNest, printfunction


def test_figure4_wave_script(tmp_path):
    """Figure 4's wave-equation generation script, verbatim API."""
    c = sp.Function("c")
    u_1 = sp.Function("u_1"); u_1_b = sp.Function("u_1_b")
    u_2 = sp.Function("u_2"); u_2_b = sp.Function("u_2_b")
    u = sp.Function("u"); u_b = sp.Function("u_b")
    i, j, k, C, D, n = sp.symbols("i,j,k,C,D,n")

    u_xx = u_1(i - 1, j, k) - 2 * u_1(i, j, k) + u_1(i + 1, j, k)
    u_yy = u_1(i, j - 1, k) - 2 * u_1(i, j, k) + u_1(i, j + 1, k)
    u_zz = u_1(i, j, k - 1) - 2 * u_1(i, j, k) + u_1(i, j, k + 1)
    expr = 2.0 * u_1(i, j, k) - u_2(i, j, k) + c(i, j, k) * D * (u_xx + u_yy + u_zz)

    lp = makeLoopNest(
        lhs=u(i, j, k), rhs=expr, counters=[i, j, k],
        bounds={i: [1, n - 2], j: [1, n - 2], k: [1, n - 2]},
    )
    assert isinstance(lp, LoopNest)

    out = io.StringIO()
    printfunction(name="wave3d", loopnestlist=[lp], file=out)
    assert "void wave3d(" in out.getvalue()

    out2 = io.StringIO()
    printfunction(
        name="wave3d_perf_b",
        loopnestlist=lp.diff({u: u_b, u_1: u_1_b, u_2: u_2_b}),
        file=out2,
    )
    code = out2.getvalue()
    assert "u_1_b[i][j][k] +=" in code
    assert "for ( i=2; i<=n - 3; i++ )" in code


def test_figure6_burgers_script(tmp_path):
    """Figure 6's Burgers-equation generation script, verbatim API."""
    u_1 = sp.Function("u_1"); u_1_b = sp.Function("u_1_b")
    u = sp.Function("u"); u_b = sp.Function("u_b")
    i, C, D, n = sp.symbols("i,C,D,n")

    ap = sp.functions.Max(u_1(i), 0)
    am = sp.functions.Min(u_1(i), 0)
    uxm = u_1(i) - u_1(i - 1)
    uxp = u_1(i + 1) - u_1(i)
    ux = ap * uxm + am * uxp
    expr = u_1(i) - C * ux + D * (u_1(i + 1) + u_1(i - 1) - 2.0 * u_1(i))

    lp = makeLoopNest(lhs=u(i), rhs=expr, counters=[i], bounds={i: [1, n - 2]})

    path = tmp_path / "burgers1d_perf_b.c"
    code = printfunction(
        name="burgers1d_perf_b",
        loopnestlist=lp.diff({u: u_b, u_1: u_1_b}),
        filename=str(path),
    )
    assert path.read_text() == code
    assert "fmax(0, u_1[i + 1])" in code
    assert "? 1.0 : 0.0" in code


def test_backend_selection(tmp_path):
    u, r, u_b, r_b = (sp.Function(s) for s in ["u", "r", "u_b", "r_b"])
    i, n = sp.symbols("i n")
    lp = makeLoopNest(lhs=r(i), rhs=u(i - 1), counters=[i], bounds={i: [1, n - 1]})
    out = io.StringIO()
    printfunction("r1", [lp], backend="fortran", file=out)
    assert "subroutine r1" in out.getvalue()
    out = io.StringIO()
    printfunction("r1", [lp], backend="python", file=out)
    assert "def r1(" in out.getvalue()


def test_unknown_backend():
    import pytest

    u, r = sp.Function("u"), sp.Function("r")
    i, n = sp.symbols("i n")
    lp = makeLoopNest(lhs=r(i), rhs=u(i - 1), counters=[i], bounds={i: [1, n - 1]})
    with pytest.raises(ValueError):
        printfunction("x", [lp], backend="cobol")
