"""Documentation integrity: internal links resolve, docs stay wired up.

The doctests inside ``docs/*.md`` and the runtime docstrings are
executed by the CI docs job (``pytest --doctest-glob='*.md' docs`` and
``--doctest-modules``); this module covers what doctests cannot — that
every internal markdown link (relative path + optional ``#anchor``)
points at a file and heading that exist, and that the documented CLI
surface is real.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")],
    key=lambda p: str(p),
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#+\s+(.*)$", re.MULTILINE)


def _anchor(heading: str) -> str:
    """GitHub-style anchor for a heading."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_:,.()/'\"]", "", text)
    return re.sub(r"\s+", "-", text).strip("-")


def _anchors(md_path: Path) -> set[str]:
    return {_anchor(h) for h in _HEADING.findall(md_path.read_text())}


def _internal_links(md_path: Path):
    text = md_path.read_text()
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


def test_doc_files_exist():
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "ensembles.md").is_file()
    assert (REPO / "docs" / "checkpointing.md").is_file()
    assert (REPO / "docs" / "fusion.md").is_file()
    assert (REPO / "docs" / "reliability.md").is_file()
    assert (REPO / "docs" / "serving.md").is_file()
    assert (REPO / "docs" / "sharding.md").is_file()
    assert len(DOC_FILES) >= 9  # README + the eight docs


@pytest.mark.parametrize("md_path", DOC_FILES, ids=lambda p: p.name)
def test_internal_links_resolve(md_path):
    for target in _internal_links(md_path):
        path_part, _, fragment = target.partition("#")
        resolved = (
            (md_path.parent / path_part).resolve() if path_part else md_path
        )
        assert resolved.exists(), (
            f"{md_path.relative_to(REPO)} links to missing {target!r}"
        )
        if fragment and resolved.suffix == ".md":
            assert fragment in _anchors(resolved), (
                f"{md_path.relative_to(REPO)} links to missing anchor "
                f"{target!r} (known: {sorted(_anchors(resolved))})"
            )


def test_docs_are_cross_linked():
    """The docs reference each other and the README, and vice versa."""
    arch = (REPO / "docs" / "architecture.md").read_text()
    ens = (REPO / "docs" / "ensembles.md").read_text()
    chk = (REPO / "docs" / "checkpointing.md").read_text()
    fus = (REPO / "docs" / "fusion.md").read_text()
    rel = (REPO / "docs" / "reliability.md").read_text()
    srv = (REPO / "docs" / "serving.md").read_text()
    shd = (REPO / "docs" / "sharding.md").read_text()
    readme = (REPO / "README.md").read_text()
    assert "ensembles.md" in arch and "fusion.md" in arch
    assert "architecture.md" in ens
    assert "architecture.md" in chk and "ensembles.md" in chk
    assert "architecture.md" in fus and "ensembles.md" in fus
    assert "architecture.md" in rel and "ensembles.md" in rel
    assert "checkpointing.md" in rel and "fusion.md" in rel
    assert "serving.md" in rel
    assert "architecture.md" in srv and "ensembles.md" in srv
    assert "reliability.md" in srv
    assert "sharding.md" in rel
    assert "architecture.md" in shd and "reliability.md" in shd
    assert "checkpointing.md" in shd
    assert "../README.md" in arch and "../README.md" in ens
    assert "../README.md" in chk and "../README.md" in fus
    assert "../README.md" in rel and "../README.md" in srv
    assert "../README.md" in shd
    assert "docs/architecture.md" in readme and "docs/ensembles.md" in readme
    assert "docs/checkpointing.md" in readme and "docs/fusion.md" in readme
    assert "docs/reliability.md" in readme
    assert "docs/serving.md" in readme
    assert "docs/sharding.md" in readme


def test_documented_cli_commands_exist():
    """Commands the docs mention parse against the real CLI."""
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(
        ["sweep", "--problem", "heat2d", "--members", "8",
         "--param", "alpha=0.1,0.2", "--workers", "2", "--quick"]
    )
    assert args.command == "sweep"
    assert args.param == [("alpha", (0.1, 0.2))]
    args = parser.parse_args(
        ["adjoint", "--problem", "burgers1d", "--steps", "24",
         "--snaps", "4", "--members", "2", "--backend", "native",
         "--baseline", "benchmarks/baseline_checkpoint.json"]
    )
    assert args.command == "adjoint"
    assert (args.steps, args.snaps) == (24, 4)
    args = parser.parse_args(
        ["fuse", "--problem", "burgers2d", "--dtype", "f32", "--explain"]
    )
    assert args.command == "fuse" and args.explain
    args = parser.parse_args(
        ["bench", "--backend", "native", "--fusion", "off"]
    )
    assert args.fusion == "off"
    args = parser.parse_args(["verify", "--chaos"])
    assert args.command == "verify" and args.chaos
    args = parser.parse_args(
        ["serve", "--socket", "/tmp/repro.sock", "--workers", "4",
         "--max-batch", "8", "--batch-window-ms", "2"]
    )
    assert args.command == "serve" and args.max_batch == 8
    args = parser.parse_args(
        ["request", "--socket", "/tmp/repro.sock", "--file", "k.stencil",
         "--size", "n=4096", "--param", "c=0.25", "--steps", "8"]
    )
    assert args.command == "request" and args.size == ["n=4096"]
    args = parser.parse_args(
        ["shard", "--problem", "heat2d", "--ranks", "1", "--ranks", "2",
         "--ranks", "4", "--quick",
         "--baseline", "benchmarks/baseline_shard.json"]
    )
    assert args.command == "shard" and args.ranks == [1, 2, 4]


def test_docs_doctest_blocks_present():
    """The docs keep executable examples (the CI docs job runs them)."""
    for name in ("architecture.md", "ensembles.md", "checkpointing.md",
                 "fusion.md", "reliability.md", "serving.md",
                 "sharding.md"):
        text = (REPO / "docs" / name).read_text()
        assert text.count(">>> ") >= 5, f"{name} lost its doctest examples"
