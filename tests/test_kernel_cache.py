"""Kernel cache tests: equal inputs hit, distinct inputs miss."""

import numpy as np
import pytest
import sympy as sp

from repro.apps import heat_problem
from repro.core import adjoint_loops, make_loop_nest
from repro.runtime import (
    Bindings,
    KernelCache,
    clear_kernel_cache,
    compile_nests,
    get_kernel_cache,
    kernel_key,
)

i = sp.Symbol("i", integer=True)
n = sp.Symbol("n", integer=True)
u, r = sp.Function("u"), sp.Function("r")


def _nest():
    return make_loop_nest(
        lhs=r(i), rhs=2 * u(i - 1) - u(i + 1), counters=[i], bounds={i: [1, n - 1]}
    )


def test_equal_inputs_return_cached_kernel_object():
    """Two compile_nests calls with structurally equal inputs share one kernel."""
    prob_a, prob_b = heat_problem(2), heat_problem(2)
    k_a = compile_nests(
        adjoint_loops(prob_a.primal, prob_a.adjoint_map), prob_a.bindings(16)
    )
    k_b = compile_nests(
        adjoint_loops(prob_b.primal, prob_b.adjoint_map), prob_b.bindings(16)
    )
    assert k_a is k_b


def test_distinct_bindings_miss_the_cache():
    cache = KernelCache()
    base = compile_nests([_nest()], Bindings(sizes={n: 16}), cache=cache)
    for bindings in [
        Bindings(sizes={n: 17}),  # different size
        Bindings(sizes={n: 16}, dtype=np.float32),  # different dtype
    ]:
        other = compile_nests([_nest()], bindings, cache=cache)
        assert other is not base
    assert cache.misses == 3
    assert cache.hits == 0


def test_distinct_params_miss_the_cache():
    C = sp.Symbol("C", real=True)
    nest = make_loop_nest(
        lhs=r(i), rhs=C * u(i), counters=[i], bounds={i: [0, n]}
    )
    cache = KernelCache()
    k1 = compile_nests([nest], Bindings(sizes={n: 8}, params={C: 1.0}), cache=cache)
    k2 = compile_nests([nest], Bindings(sizes={n: 8}, params={C: 2.0}), cache=cache)
    assert k1 is not k2


def test_distinct_name_misses_the_cache():
    cache = KernelCache()
    k1 = compile_nests([_nest()], Bindings(sizes={n: 8}), name="a", cache=cache)
    k2 = compile_nests([_nest()], Bindings(sizes={n: 8}), name="b", cache=cache)
    assert k1 is not k2


def test_function_rebinding_misses_the_cache():
    f = sp.Function("f")
    nest = make_loop_nest(
        lhs=r(i), rhs=f(u(i)), counters=[i], bounds={i: [0, n]}
    )
    impl_a, impl_b = (lambda x: x * 2), (lambda x: x * 3)
    cache = KernelCache()
    k_a = compile_nests(
        [nest], Bindings(sizes={n: 8}, functions={"f": impl_a}), cache=cache
    )
    k_a2 = compile_nests(
        [nest], Bindings(sizes={n: 8}, functions={"f": impl_a}), cache=cache
    )
    k_b = compile_nests(
        [nest], Bindings(sizes={n: 8}, functions={"f": impl_b}), cache=cache
    )
    assert k_a is k_a2
    assert k_a is not k_b


def test_cache_true_uses_global_cache():
    """cache=True is accepted as an explicit 'default caching' spelling."""
    clear_kernel_cache()
    k1 = compile_nests([_nest()], Bindings(sizes={n: 21}), cache=True)
    k2 = compile_nests([_nest()], Bindings(sizes={n: 21}))
    assert k1 is k2


def test_cache_bypass():
    cache = KernelCache()
    k1 = compile_nests([_nest()], Bindings(sizes={n: 8}), cache=cache)
    k2 = compile_nests([_nest()], Bindings(sizes={n: 8}), cache=False)
    assert k1 is not k2
    assert cache.stats()["entries"] == 1


def test_cache_hit_and_miss_counters():
    cache = KernelCache()
    for _ in range(3):
        compile_nests([_nest()], Bindings(sizes={n: 8}), cache=cache)
    stats = cache.stats()
    assert stats == {"hits": 2, "misses": 1, "entries": 1}


def test_cache_lru_eviction():
    cache = KernelCache(maxsize=1)
    k1 = compile_nests([_nest()], Bindings(sizes={n: 8}), cache=cache)
    compile_nests([_nest()], Bindings(sizes={n: 9}), cache=cache)  # evicts k1
    assert len(cache) == 1
    k1_again = compile_nests([_nest()], Bindings(sizes={n: 8}), cache=cache)
    assert k1_again is not k1


def test_global_cache_clear():
    k1 = compile_nests([_nest()], Bindings(sizes={n: 12}))
    assert compile_nests([_nest()], Bindings(sizes={n: 12})) is k1
    clear_kernel_cache()
    k2 = compile_nests([_nest()], Bindings(sizes={n: 12}))
    assert k2 is not k1
    assert get_kernel_cache().stats()["hits"] == 0


def test_kernel_key_stable_and_content_addressed():
    key1 = kernel_key([_nest()], Bindings(sizes={n: 8}))
    key2 = kernel_key([_nest()], Bindings(sizes={n: 8}))
    key3 = kernel_key([_nest()], Bindings(sizes={n: 9}))
    assert key1 == key2
    assert key1 != key3


def test_invalid_maxsize():
    with pytest.raises(ValueError):
        KernelCache(maxsize=0)


def test_cached_kernels_share_plans():
    """The compile-once/plan-once pipeline: both memo layers compose."""
    prob = heat_problem(1)
    k1 = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(30)
    )
    k2 = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(30)
    )
    assert k1 is k2
    assert k1.plan(tile_shape=(8,)) is k2.plan(tile_shape=(8,))
