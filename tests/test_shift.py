"""Unit tests for the index-shift transformation (Section 3.3.2)."""

import sympy as sp

from repro.core import make_loop_nest
from repro.core.diff import adjoint_scatter_statements
from repro.core.shift import shift_all, shift_contribution

i, j = sp.symbols("i j", integer=True)
n = sp.Symbol("n", integer=True)
u, c, r = sp.Function("u"), sp.Function("c"), sp.Function("r")
u_b, r_b = sp.Function("u_b"), sp.Function("r_b")


def contribs_1d():
    expr = c(i) * (2.0 * u(i - 1) - 3.0 * u(i) + 4 * u(i + 1))
    nest = make_loop_nest(lhs=r(i), rhs=expr, counters=[i], bounds={i: [1, n - 1]})
    return adjoint_scatter_statements(nest, {r: r_b, u: u_b}), nest


def test_all_shifted_statements_write_bare_counters():
    contribs, nest = contribs_1d()
    for sh in shift_all(contribs, nest.counters):
        assert sh.statement.lhs == u_b(i)


def test_shift_matches_section32_loops():
    """After shifting, the three loops read exactly as in Section 3.2."""
    contribs, nest = contribs_1d()
    shifted = {sh.offset: sh.statement for sh in shift_all(contribs, nest.counters)}
    # offset -1 loop: ub[j] += 2.0*c[j+1]*rb[j+1]
    assert sp.expand(shifted[(-1,)].rhs - 2.0 * c(i + 1) * r_b(i + 1)) == 0
    # offset 0 loop: ub[j] -= 3.0*c[j]*rb[j]
    assert sp.expand(shifted[(0,)].rhs + 3.0 * c(i) * r_b(i)) == 0
    # offset +1 loop: ub[j] += 4.0*c[j-1]*rb[j-1]
    assert sp.expand(shifted[(1,)].rhs - 4 * c(i - 1) * r_b(i - 1)) == 0


def test_shift_preserves_offset_record():
    contribs, nest = contribs_1d()
    offsets = {sh.offset for sh in shift_all(contribs, nest.counters)}
    assert offsets == {(-1,), (0,), (1,)}


def test_zero_offset_is_identity():
    contribs, nest = contribs_1d()
    zero = [cb for cb in contribs if cb.offset == (0,)][0]
    sh = shift_contribution(zero, nest.counters)
    assert sh.statement.rhs == zero.statement.rhs


def test_shift_moves_nonlinear_primal_reads():
    """Primal reads inside derivatives shift too (Section 3.3.2's example:
    shifted derivatives may read indices that never occur in the primal)."""
    expr = u(i - 1, j) * u(i, j - 1)
    nest = make_loop_nest(
        lhs=r(i, j), rhs=expr, counters=[i, j],
        bounds={i: [1, n - 2], j: [1, n - 2]},
    )
    contribs = adjoint_scatter_statements(nest, {r: r_b, u: u_b})
    shifted = {sh.offset: sh.statement for sh in shift_all(contribs, nest.counters)}
    # d/du(i-1,j) = u(i,j-1); shifted by +(1,0): reads u(i+1, j-1), an index
    # the primal never touches.
    st = shifted[(-1, 0)]
    accs = st.rhs.atoms(sp.core.function.AppliedUndef)
    assert u(i + 1, j - 1) in accs


def test_shift_2d_mixed_offsets():
    expr = u(i - 1, j + 1)
    nest = make_loop_nest(
        lhs=r(i, j), rhs=expr, counters=[i, j],
        bounds={i: [1, n - 2], j: [1, n - 2]},
    )
    contribs = adjoint_scatter_statements(nest, {r: r_b, u: u_b})
    (sh,) = shift_all(contribs, nest.counters)
    assert sh.offset == (-1, 1)
    assert sh.statement.lhs == u_b(i, j)
    assert r_b(i + 1, j - 1) in sh.statement.rhs.atoms(sp.core.function.AppliedUndef)
