"""Native-backend tests: JIT-built C statements, bitwise-identical.

The contract under test is absolute: ``backend="native"`` must
reproduce the serial seed path *bit for bit* — on the first run and on
steady-state replay, across disciplines, apps and dtypes — or fall back
to the Python path statement-wise (and then trivially match).  The
suite also pins the operational story: the content-addressed ``.so``
disk cache reuses builds without invoking the compiler, a machine
without a C toolchain warns exactly once and produces identical
results, and the scalar-semantics assumptions the lowering whitelist
rests on (``x**2`` is ``x*x``, NumPy min/max tie-breaking) hold on this
platform.
"""

import warnings

import numpy as np
import pytest
import sympy as sp

from repro.apps import (
    advection_problem,
    anisotropic_problem,
    burgers_problem,
    heat_problem,
    wave_problem,
)
from repro.baselines.scatter import tapenade_style_adjoint
from repro.codegen.native_c import generate_native_source, native_eligibility
from repro.core import adjoint_loops, make_loop_nest
from repro.runtime import Bindings, ExecutionConfig, compile_nests, native_available
from repro.runtime import native as native_mod

needs_cc = pytest.mark.skipif(
    not native_available(), reason="no C toolchain on this machine"
)


def _seed_serial(kernel, arrays):
    """The pre-plan seed execution path: per-call views and temporaries."""
    for region in kernel.regions:
        region.execute(arrays)


def _case(prob, n, rng, dtype=np.float64, with_primal=True, scatter=False):
    if scatter:
        nests = [tapenade_style_adjoint(prob.primal, prob.adjoint_map)]
    else:
        nests = list(adjoint_loops(prob.primal, prob.adjoint_map))
        if with_primal:
            nests = [prob.primal] + nests
    kernel = compile_nests(nests, prob.bindings(n, dtype=dtype))
    base = prob.allocate(n, rng=rng, dtype=dtype)
    base.update(prob.allocate_adjoints(n, rng=rng, dtype=dtype))
    return kernel, base


def _assert_native_matches_seed(kernel, base, replays=2, **plan_kwargs):
    """Native bound runs equal the seed serial path bitwise."""
    ref = {k: v.copy() for k, v in base.items()}
    _seed_serial(kernel, ref)
    got = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(backend="native", **plan_kwargs)
    try:
        bound = plan.bind(got)
        for _ in range(replays):
            bound.run()
            for name in ref:
                assert ref[name].tobytes() == got[name].tobytes(), (
                    f"{name} diverged from the seed serial path"
                )
            for name, arr in base.items():
                got[name][...] = arr
        return bound
    finally:
        plan.close()


# -- bitwise identity ---------------------------------------------------------


@needs_cc
@pytest.mark.parametrize("dtype", [np.float64, np.float32], ids=["f64", "f32"])
def test_heat2d_forward_and_adjoint_bitwise(rng, dtype):
    """The acceptance case: heat2d primal + adjoint, fully native, exact."""
    kernel, base = _case(heat_problem(2), 18, rng, dtype=dtype)
    bound = _assert_native_matches_seed(kernel, base)
    assert bound.native_statement_count == bound.statement_count


@needs_cc
@pytest.mark.parametrize("fusion", ["auto", "off"])
@pytest.mark.parametrize(
    "factory,n",
    [
        (lambda: heat_problem(1), 40),
        (lambda: heat_problem(3), 10),
        (lambda: wave_problem(1), 40),
        (lambda: wave_problem(2), 18),
        (lambda: burgers_problem(1), 40),
        (lambda: burgers_problem(2), 16),
        (lambda: anisotropic_problem(), 16),
        (lambda: anisotropic_problem(active_k=True), 14),
        (lambda: advection_problem(1), 40),
        (lambda: advection_problem(2), 40),
    ],
    ids=[
        "heat1d", "heat3d", "wave1d", "wave2d", "burgers1d", "burgers2d",
        "anisotropic", "anisotropic-activek", "advection1", "advection2",
    ],
)
def test_adjoint_apps_bitwise(factory, n, rng, fusion):
    kernel, base = _case(factory(), n, rng)
    _assert_native_matches_seed(kernel, base, fusion=fusion)


@needs_cc
@pytest.mark.parametrize(
    "config",
    [
        dict(num_threads=4, min_block_iterations=1),
        dict(tile_shape=(6, 6)),
        dict(num_threads=2, tile_shape=(6, 6), min_block_iterations=1),
    ],
    ids=["threads4", "tiled", "tiled+threads2"],
)
def test_disciplines_bitwise(rng, config):
    kernel, base = _case(heat_problem(2), 24, rng)
    _assert_native_matches_seed(kernel, base, **config)


@needs_cc
def test_scatter_discipline_bitwise(rng):
    prob = heat_problem(2)
    kernel, base = _case(prob, 18, rng, scatter=True)
    ref = {k: v.copy() for k, v in base.items()}
    kernel.plan(scatter=True, num_threads=2, min_block_iterations=1).run_unbound(ref)
    got = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(
        backend="native", scatter=True, num_threads=2, min_block_iterations=1
    )
    try:
        bound = plan.bind(got)
        bound.run()
        assert bound.native_statement_count > 0
        for name in ref:
            assert ref[name].tobytes() == got[name].tobytes()
    finally:
        plan.close()


@needs_cc
def test_burgers_float32_partial_fallback_still_exact(rng):
    """Heaviside statements fall back on f32; results stay bitwise exact."""
    kernel, base = _case(burgers_problem(2), 16, rng, dtype=np.float32)
    bound = _assert_native_matches_seed(kernel, base)
    assert 0 < bound.native_statement_count < bound.statement_count


@needs_cc
def test_plan_run_memoised_binding_uses_native(rng):
    """ExecutionPlan.run's transparent binding also hits the native path."""
    kernel, base = _case(heat_problem(2), 18, rng)
    ref = {k: v.copy() for k, v in base.items()}
    _seed_serial(kernel, ref)
    got = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(backend="native")
    try:
        plan.run(got)  # first sighting: unbound python reference path
        for name, arr in base.items():
            got[name][...] = arr
        plan.run(got)  # second sighting: binds natively
        for name in ref:
            assert ref[name].tobytes() == got[name].tobytes()
    finally:
        plan.close()


# -- fallback without a toolchain --------------------------------------------


def test_no_compiler_falls_back_and_warns_once(rng, monkeypatch, tmp_path):
    """Pinned to a nonexistent compiler: one warning, identical results."""
    monkeypatch.setenv("REPRO_CC", str(tmp_path / "no-such-cc"))
    monkeypatch.setattr(native_mod, "_toolchain_memo", {})
    monkeypatch.setattr(native_mod, "_warned", set())
    assert not native_available()

    prob = heat_problem(2)
    nests = [prob.primal] + list(adjoint_loops(prob.primal, prob.adjoint_map))
    kernel = compile_nests(nests, prob.bindings(12), cache=False)
    base = prob.allocate(12, rng=rng)
    base.update(prob.allocate_adjoints(12, rng=rng))

    ref = {k: v.copy() for k, v in base.items()}
    _seed_serial(kernel, ref)

    got = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(backend="native")
    with pytest.warns(RuntimeWarning, match="no C compiler"):
        bound = plan.bind(got)
    assert bound.native_statement_count == 0  # full python fallback
    bound.run()
    for name in ref:
        assert ref[name].tobytes() == got[name].tobytes()

    # The second binding must not warn again.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        rebound = plan.bind({k: v.copy() for k, v in base.items()})
    assert rebound.native_statement_count == 0
    plan.close()


@needs_cc
def test_toolchain_change_revalidates_kernel_memo(rng, monkeypatch, tmp_path):
    """A kernel bound under a dead toolchain recovers once cc is back."""
    prob = heat_problem(1)
    nests = list(adjoint_loops(prob.primal, prob.adjoint_map))
    kernel = compile_nests(nests, prob.bindings(20), cache=False)
    base = prob.allocate(20, rng=rng)
    base.update(prob.allocate_adjoints(20, rng=rng))

    monkeypatch.setenv("REPRO_CC", str(tmp_path / "no-such-cc"))
    monkeypatch.setattr(native_mod, "_toolchain_memo", {})
    monkeypatch.setattr(native_mod, "_warned", set())
    with pytest.warns(RuntimeWarning):
        plan = kernel.plan(backend="native")
        assert plan.bind(dict(base)).native_statement_count == 0

    monkeypatch.delenv("REPRO_CC")
    monkeypatch.setattr(native_mod, "_toolchain_memo", {})
    bound = kernel.plan(backend="native").bind(dict(base))
    assert bound.native_statement_count > 0


# -- disk cache ---------------------------------------------------------------


@needs_cc
def test_shared_object_disk_cache_reuses_builds(rng, monkeypatch, tmp_path):
    """Same kernel content: second build reuses the .so without compiling."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    prob = heat_problem(2)
    nests = list(adjoint_loops(prob.primal, prob.adjoint_map))

    calls = {"n": 0}
    real_run = native_mod.subprocess.run

    def counting_run(cmd, **kwargs):
        if isinstance(cmd, list) and "-shared" in cmd:
            calls["n"] += 1
        return real_run(cmd, **kwargs)

    monkeypatch.setattr(native_mod.subprocess, "run", counting_run)

    k1 = compile_nests(nests, prob.bindings(12), cache=False)
    lib1 = native_mod.library_for_kernel(k1)
    assert lib1 is not None and calls["n"] == 1
    assert lib1.so_path.exists()
    assert lib1.so_path.with_suffix(".c").exists()  # source kept for debugging

    # A content-equal kernel compiled separately: cache hit, no cc call.
    k2 = compile_nests(nests, prob.bindings(12), cache=False)
    lib2 = native_mod.library_for_kernel(k2)
    assert lib2 is not None and calls["n"] == 1
    assert lib2.so_path == lib1.so_path

    # Grid size lives in the runtime geometry, not the source: a
    # different n still hits the same shared object.
    k3 = compile_nests(nests, prob.bindings(14), cache=False)
    lib3 = native_mod.library_for_kernel(k3)
    assert lib3 is not None and calls["n"] == 1
    assert lib3.so_path == lib1.so_path

    # Different generated code (dtype changes the typedef): rebuild.
    k4 = compile_nests(nests, prob.bindings(12, dtype=np.float32), cache=False)
    lib4 = native_mod.library_for_kernel(k4)
    assert lib4 is not None and calls["n"] == 2
    assert lib4.so_path != lib1.so_path


@needs_cc
def test_library_memoised_on_kernel(rng):
    prob = heat_problem(1)
    kernel = compile_nests(
        list(adjoint_loops(prob.primal, prob.adjoint_map)),
        prob.bindings(16),
        cache=False,
    )
    assert native_mod.library_for_kernel(kernel) is native_mod.library_for_kernel(
        kernel
    )


# -- eligibility gating -------------------------------------------------------


def _one_statement_kernel(rhs_builder, n=24, op="="):
    i = sp.Symbol("i", integer=True)
    nsym = sp.Symbol("n", integer=True)
    u, v = sp.Function("u"), sp.Function("v")
    nest = make_loop_nest(
        lhs=v(i),
        rhs=rhs_builder(u, i),
        counters=[i],
        bounds={i: [1, nsym - 2]},
        op=op,
        name="gate",
    )
    bindings = Bindings(sizes={nsym: n})
    kernel = compile_nests([nest], bindings, cache=False)
    arrays = {
        "u": np.random.default_rng(3).standard_normal(n + 1) * 0.5 + 1.5,
        "v": np.zeros(n + 1),
    }
    return kernel, arrays


@pytest.mark.parametrize(
    "builder,reason_part",
    [
        (lambda u, i: sp.sin(u(i)), "no bitwise-exact native lowering"),
        (lambda u, i: u(i) ** 3, "pow exponent 3"),
        (lambda u, i: u(i) ** -2, "pow exponent -2"),
    ],
    ids=["sin", "cube", "invsquare"],
)
def test_ineligible_expressions_are_gated(builder, reason_part):
    kernel, _ = _one_statement_kernel(builder)
    st = kernel.regions[0].statements[0]
    reason = native_eligibility(st, dim=1, dtype=kernel.regions[0].dtype)
    assert reason is not None and reason_part in reason
    _, manifest = generate_native_source(kernel)
    assert manifest == {}


def _self_ref_statement(read_offset: int):
    """A hand-built compiled statement writing the array it reads.

    The front-end's stencil validation (Section 3.4) rejects such
    nests, but transformed/merged adjoint statements are not funnelled
    through it — the eligibility gate is the runtime's own last line.
    """
    from repro.runtime.compiler import CompiledAccess, CompiledStatement

    acc_w = CompiledAccess(name="u", slots=((0, 0),))
    acc_r = CompiledAccess(name="u", slots=((0, read_offset),))
    return CompiledStatement(
        target=acc_w,
        op="+=",
        eval_fn=lambda a: 0.5 * a,
        reads=(acc_r,),
        bare_axes=(),
        guard_box=None,
        dim=1,
        rhs_expr=sp.Float(0.5) * sp.Symbol("__acc0"),
    )


def test_shifted_self_reference_is_gated():
    """u[i] += f(u[i-1]) fuses differently in a C loop: must fall back."""
    st = _self_ref_statement(read_offset=-1)
    reason = native_eligibility(st, dim=1, dtype=np.float64)
    assert reason is not None and "shifted offsets" in reason


def test_elementwise_self_reference_is_eligible():
    """u[i] += f(u[i]) reads before it writes in both paths: eligible."""
    st = _self_ref_statement(read_offset=0)
    assert native_eligibility(st, dim=1, dtype=np.float64) is None


@needs_cc
@pytest.mark.parametrize(
    "builder",
    [
        lambda u, i: u(i) ** 2 + 0.25 * u(i - 1) * u(i + 1),
        lambda u, i: sp.sqrt(u(i)) + 1 / u(i + 1),
        lambda u, i: sp.Max(0, u(i)) * u(i - 1) + sp.Min(0, u(i)) * u(i + 1),
        lambda u, i: sp.Heaviside(u(i) - 1.5) * u(i - 1),
        lambda u, i: sp.Rational(1, 3) * u(i) + u(i + 1) / 7,
        lambda u, i: u(i) / sp.sqrt(u(i + 1)),
        lambda u, i: 0.1 * i * u(i),  # bare counter operand
    ],
    ids=["square", "sqrt-recip", "minmax", "heaviside", "rational", "rsqrt", "counter"],
)
def test_eligible_scalar_semantics_bitwise(builder):
    """Each whitelisted construct matches the NumPy path bit for bit."""
    kernel, arrays = _one_statement_kernel(builder)
    ref = {k: v.copy() for k, v in arrays.items()}
    _seed_serial(kernel, ref)
    got = {k: v.copy() for k, v in arrays.items()}
    plan = kernel.plan(backend="native")
    try:
        bound = plan.bind(got)
        assert bound.native_statement_count == 1
        bound.run()
        assert ref["v"].tobytes() == got["v"].tobytes()
    finally:
        plan.close()


@needs_cc
def test_minmax_nan_and_signed_zero_semantics():
    """np.maximum/minimum edge semantics survive the C lowering exactly.

    The lowering encodes strict-comparison ternaries that break ties to
    the *second* operand and propagate NaN payloads; this exercises the
    full special-value matrix through a real kernel.
    """
    i = sp.Symbol("i", integer=True)
    nsym = sp.Symbol("n", integer=True)
    u, w, v = sp.Function("u"), sp.Function("w"), sp.Function("v")
    nest = make_loop_nest(
        lhs=v(i),
        rhs=sp.Max(u(i), w(i)) + 2.0 * sp.Min(u(i), w(i)),
        counters=[i],
        bounds={i: [0, nsym - 1]},
        name="mm",
    )
    specials = np.array(
        [1.0, -1.0, 0.0, -0.0, np.inf, -np.inf, 3.5,
         np.frombuffer(np.int64(0x7FF8000000000001).tobytes(), np.float64)[0]]
    )
    n = len(specials) ** 2
    kernel = compile_nests([nest], Bindings(sizes={nsym: n}), cache=False)
    a, b = np.meshgrid(specials, specials)
    arrays = {"u": a.ravel(), "w": b.ravel(), "v": np.zeros(n)}
    ref = {k: v_.copy() for k, v_ in arrays.items()}
    with np.errstate(invalid="ignore"):  # inf + -inf operands are the point
        _seed_serial(kernel, ref)
    plan = kernel.plan(backend="native")
    try:
        bound = plan.bind(arrays)
        assert bound.native_statement_count == 1
        bound.run()
        assert ref["v"].tobytes() == arrays["v"].tobytes()
    finally:
        plan.close()


# -- config / bind-time validation -------------------------------------------


def test_backend_config_validation():
    with pytest.raises(ValueError, match="backend"):
        ExecutionConfig(backend="gpu")
    assert ExecutionConfig(backend="native").backend == "native"


@needs_cc
def test_rank_mismatched_arrays_fall_back(rng):
    """Arrays with extra trailing dimensions bind python-side (and fail
    there as loudly as the python backend does), never silently compute
    on the leading dimensions natively."""
    i = sp.Symbol("i", integer=True)
    nsym = sp.Symbol("n", integer=True)
    u, v = sp.Function("u"), sp.Function("v")
    nest = make_loop_nest(
        lhs=v(i), rhs=0.5 * u(i), counters=[i],
        bounds={i: [1, nsym - 2]}, name="rank",
    )
    kernel = compile_nests([nest], Bindings(sizes={nsym: 16}), cache=False)
    bad = {"u": rng.standard_normal((17, 3)), "v": np.zeros((17, 3))}
    plan = kernel.plan(backend="native")
    try:
        bound = plan.bind(bad)
        assert bound.native_statement_count == 0
        with pytest.raises(ValueError):  # same failure as backend="python"
            bound.run()
    finally:
        plan.close()


def test_wide_minmax_is_gated():
    i = sp.Symbol("i", integer=True)
    expr = sp.Max(
        sp.Symbol("__acc0"), sp.Symbol("__acc1"), sp.Symbol("__acc2")
    )
    from repro.codegen.native_c import _expr_eligible

    assert _expr_eligible(expr, "float64") is not None
    assert _expr_eligible(expr.args[0] + expr.args[1], "float64") is None


@needs_cc
def test_cross_name_aliased_arrays_fall_back(rng):
    """One ndarray bound under two names must keep snapshot semantics.

    A fused C loop over v[i] = 0.5*u[i+1] with u and v aliased would
    read elements it just wrote; the bind-time may_share_memory guard
    routes such statements to the Python path, which stages the whole
    RHS before writing — so results still match the aliased reference.
    """
    i = sp.Symbol("i", integer=True)
    nsym = sp.Symbol("n", integer=True)
    u, v = sp.Function("u"), sp.Function("v")
    nest = make_loop_nest(
        lhs=v(i), rhs=0.5 * u(i + 1), counters=[i],
        bounds={i: [1, nsym - 2]}, name="alias",
    )
    kernel = compile_nests([nest], Bindings(sizes={nsym: 32}), cache=False)
    x = rng.standard_normal(33)
    ref = x.copy()
    kernel.plan().run_unbound({"u": ref, "v": ref})
    got = x.copy()
    plan = kernel.plan(backend="native")
    try:
        bound = plan.bind({"u": got, "v": got})
        assert bound.native_statement_count == 0
        bound.run()
        assert ref.tobytes() == got.tobytes()
        # Distinct arrays still dispatch natively.
        assert (
            plan.bind({"u": x.copy(), "v": np.zeros(33)}).native_statement_count
            == 1
        )
    finally:
        plan.close()


@needs_cc
def test_undersized_arrays_raise_like_python_backend(rng):
    """Arrays smaller than the kernel bounds must raise, not scribble.

    The native bind validates every access against the concrete array
    shapes and falls back to the Python statement, whose view
    construction raises the same KernelError the python backend gives.
    """
    from repro.runtime import KernelError

    prob = heat_problem(2)
    kernel, base = _case(prob, 18, rng, with_primal=False)
    small = {k: np.ascontiguousarray(v[:-2, :-2]) for k, v in base.items()}
    py_plan = kernel.plan()
    nat_plan = kernel.plan(backend="native")
    try:
        with pytest.raises(KernelError, match="out of bounds"):
            py_plan.bind(small)
        with pytest.raises(KernelError, match="out of bounds"):
            nat_plan.bind(small)
    finally:
        py_plan.close()
        nat_plan.close()


@needs_cc
def test_foreign_dtype_arrays_fall_back(rng):
    """Arrays not matching the kernel dtype bind on the python path."""
    prob = heat_problem(1)
    kernel, base = _case(prob, 20, rng, with_primal=False)
    cast = {k: v.astype(np.float32).astype(np.float64) for k, v in base.items()}
    plan = kernel.plan(backend="native")
    try:
        assert plan.bind(cast).native_statement_count > 0
        wrong = {k: v.astype(np.float32) for k, v in base.items()}
        bound = plan.bind(wrong)
        assert bound.native_statement_count == 0
        bound.run()  # python fallback still executes correctly
    finally:
        plan.close()


# -- platform assumptions -----------------------------------------------------


def test_platform_pow_assumptions():
    """The whitelist rests on these NumPy scalar identities."""
    x = np.random.default_rng(0).standard_normal(4096) * 3
    assert (x**2).tobytes() == (x * x).tobytes()
    pos = np.abs(x) + 0.01
    assert (pos**-1).tobytes() == (1.0 / pos).tobytes()
    assert (pos**0.5).tobytes() == np.sqrt(pos).tobytes()
    xf = x.astype(np.float32)
    assert (xf**2).tobytes() == (xf * xf).tobytes()
