"""Unit tests for the NumPy kernel compiler."""

import numpy as np
import sympy as sp
import pytest

from repro.core import adjoint_loops, make_loop_nest
from repro.runtime import Bindings, assert_disjoint_writes, compile_nests
from repro.runtime.compiler import KernelError

i, j = sp.symbols("i j", integer=True)
n = sp.Symbol("n", integer=True)
C = sp.Symbol("C", real=True)
u, r, c = sp.Function("u"), sp.Function("r"), sp.Function("c")


def test_simple_gather_kernel(rng):
    nest = make_loop_nest(
        lhs=r(i), rhs=2 * u(i - 1) - u(i + 1), counters=[i], bounds={i: [1, n - 1]}
    )
    N = 20
    k = compile_nests([nest], Bindings(sizes={n: N}))
    uv = rng.standard_normal(N + 1)
    arrays = {"u": uv, "r": np.zeros(N + 1)}
    k(arrays)
    expected = 2 * uv[0 : N - 1] - uv[2 : N + 1]
    np.testing.assert_allclose(arrays["r"][1:N], expected)


def test_scalar_parameter_binding(rng):
    nest = make_loop_nest(
        lhs=r(i), rhs=C * u(i), counters=[i], bounds={i: [0, n]}
    )
    N = 8
    k = compile_nests([nest], Bindings(sizes={n: N}, params={C: 2.5}))
    uv = rng.standard_normal(N + 1)
    arrays = {"u": uv.copy(), "r": np.zeros(N + 1)}
    k(arrays)
    np.testing.assert_allclose(arrays["r"], 2.5 * uv)


def test_unbound_symbol_raises():
    nest = make_loop_nest(lhs=r(i), rhs=C * u(i), counters=[i], bounds={i: [0, n]})
    with pytest.raises(KernelError, match="unbound"):
        compile_nests([nest], Bindings(sizes={n: 8}))


def test_nonint_bound_raises():
    nest = make_loop_nest(lhs=r(i), rhs=u(i), counters=[i], bounds={i: [0, n]})
    with pytest.raises(ValueError):
        compile_nests([nest], Bindings(sizes={}))


def test_bare_counter_in_body(rng):
    """Counters may appear in the body (e.g. coordinate-dependent terms)."""
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i) + i, counters=[i], bounds={i: [0, n]}
    )
    N = 9
    uv = rng.standard_normal(N + 1)
    arrays = {"u": uv.copy(), "r": np.zeros(N + 1)}
    compile_nests([nest], Bindings(sizes={n: N}))(arrays)
    np.testing.assert_allclose(arrays["r"], uv + np.arange(N + 1))


def test_bare_counter_2d_broadcasting(rng):
    nest = make_loop_nest(
        lhs=r(i, j), rhs=u(i, j) * 0 + i * 10 + j, counters=[i, j],
        bounds={i: [0, n], j: [0, n]},
    )
    N = 4
    arrays = {"u": np.zeros((N + 1, N + 1)), "r": np.zeros((N + 1, N + 1))}
    compile_nests([nest], Bindings(sizes={n: N}))(arrays)
    I, J = np.meshgrid(np.arange(N + 1), np.arange(N + 1), indexing="ij")
    np.testing.assert_allclose(arrays["r"], 10 * I + J)


def test_transposed_read(rng):
    """Reads with permuted counters are transposed into the frame."""
    nest = make_loop_nest(
        lhs=r(i, j), rhs=u(j, i), counters=[i, j], bounds={i: [0, n], j: [0, n]}
    )
    N = 5
    uv = rng.standard_normal((N + 1, N + 1))
    arrays = {"u": uv, "r": np.zeros((N + 1, N + 1))}
    compile_nests([nest], Bindings(sizes={n: N}))(arrays)
    np.testing.assert_allclose(arrays["r"], uv.T)


def test_broadcast_read_lower_rank(rng):
    """A 1-D array read inside a 2-D nest broadcasts along the other axis."""
    v = sp.Function("v")
    nest = make_loop_nest(
        lhs=r(i, j), rhs=v(i), counters=[i, j], bounds={i: [0, n], j: [0, n]}
    )
    N = 4
    vv = rng.standard_normal(N + 1)
    arrays = {"v": vv, "r": np.zeros((N + 1, N + 1))}
    compile_nests([nest], Bindings(sizes={n: N}))(arrays)
    np.testing.assert_allclose(arrays["r"], vv[:, None] * np.ones((1, N + 1)))


def test_reduction_write(rng):
    """Writing r(i) from a 2-D nest with += sums over the j axis."""
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i, j), counters=[i, j],
        bounds={i: [0, n], j: [0, n]}, op="+=",
    )
    N = 6
    uv = rng.standard_normal((N + 1, N + 1))
    arrays = {"u": uv, "r": np.zeros(N + 1)}
    compile_nests([nest], Bindings(sizes={n: N}))(arrays)
    np.testing.assert_allclose(arrays["r"], uv.sum(axis=1))


def test_reduction_assign_takes_last(rng):
    """'=' with a reduced target keeps the last iteration's value."""
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i, j), counters=[i, j],
        bounds={i: [0, n], j: [0, n]}, op="=",
    )
    N = 6
    uv = rng.standard_normal((N + 1, N + 1))
    arrays = {"u": uv, "r": np.zeros(N + 1)}
    compile_nests([nest], Bindings(sizes={n: N}))(arrays)
    np.testing.assert_allclose(arrays["r"], uv[:, N])


def test_out_of_bounds_read_raises():
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i - 1), counters=[i], bounds={i: [0, n]}
    )
    k = compile_nests([nest], Bindings(sizes={n: 8}))
    with pytest.raises(KernelError, match="out of bounds"):
        k({"u": np.zeros(9), "r": np.zeros(9)})


def test_no_silent_wraparound():
    """Negative slice starts must never silently wrap (NumPy would)."""
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i - 3), counters=[i], bounds={i: [0, n]}
    )
    k = compile_nests([nest], Bindings(sizes={n: 5}))
    with pytest.raises(KernelError):
        k({"u": np.arange(6.0), "r": np.zeros(6)})


def test_empty_region_skipped():
    nest = make_loop_nest(lhs=r(i), rhs=u(i), counters=[i], bounds={i: [5, n]})
    k = compile_nests([nest], Bindings(sizes={n: 3}))  # 5 > 3: empty
    arrays = {"u": np.ones(10), "r": np.zeros(10)}
    k(arrays)
    assert not arrays["r"].any()


def test_mismatched_counters_raise():
    a = make_loop_nest(lhs=r(i), rhs=u(i), counters=[i], bounds={i: [0, n]})
    b = make_loop_nest(lhs=r(j), rhs=u(j), counters=[j], bounds={j: [0, n]})
    with pytest.raises(KernelError):
        compile_nests([a, b], Bindings(sizes={n: 4}))


def test_no_nests_raises():
    with pytest.raises(KernelError):
        compile_nests([], Bindings())


def test_assert_disjoint_accepts_adjoint():
    from repro.apps import heat_problem

    prob = heat_problem(2)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    k = compile_nests(nests, prob.bindings(16))
    assert_disjoint_writes(k)


def test_assert_disjoint_rejects_overlap():
    a = make_loop_nest(lhs=r(i), rhs=u(i), counters=[i], bounds={i: [0, 5]}, op="+=")
    b = make_loop_nest(lhs=r(i), rhs=u(i), counters=[i], bounds={i: [5, 9]}, op="+=")
    k = compile_nests([a, b], Bindings(sizes={n: 10}))
    with pytest.raises(KernelError, match="overlapping"):
        assert_disjoint_writes(k)


def test_assert_disjoint_small_grid_detects_violation():
    """On a grid smaller than the stencil spread the split overlaps and
    the disjointness check must catch it."""
    from repro.apps import heat_problem

    prob = heat_problem(1)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    k = compile_nests(nests, prob.bindings(3))  # interior [1, 1]: too small
    with pytest.raises(KernelError):
        assert_disjoint_writes(k)


def test_total_iterations():
    nest = make_loop_nest(lhs=r(i), rhs=u(i), counters=[i], bounds={i: [1, n - 1]})
    k = compile_nests([nest], Bindings(sizes={n: 11}))
    assert k.total_iterations() == 10


# -- guard normalisation (compiler vs interpreter oracle) --------------------


GUARDS_1D = [
    sp.Ge(i, 3),            # i >= 3
    sp.Gt(i, 3),            # i > 3  ->  i >= 4
    sp.Le(i, 6),            # i <= 6
    sp.Lt(i, 6),            # i < 6  ->  i <= 5
    sp.Ge(6, i),            # 6 >= i  ->  i <= 6
    sp.Gt(6, i),            # 6 > i  ->  i <= 5
    sp.Le(3, i),            # 3 <= i  ->  i >= 3
    sp.Lt(3, i),            # 3 < i  ->  i >= 4
    sp.And(sp.Gt(i, 1), sp.Lt(i, n - 1)),
    sp.And(sp.Lt(1, i), sp.Gt(n - 1, i)),
]


@pytest.mark.parametrize("guard", GUARDS_1D, ids=[str(g) for g in GUARDS_1D])
def test_guard_normalisation_matches_interpreter(rng, guard):
    """Strict and mirrored guards: compiled box == pointwise evaluation."""
    from repro.core.loopnest import LoopNest, Statement
    from repro.runtime import interpret_nests

    N = 12
    nest = LoopNest(
        statements=(Statement(lhs=r(i), rhs=2 * u(i), op="=", guard=guard),),
        counters=(i,),
        bounds={i: (0, n)},
    )
    bindings = Bindings(sizes={n: N})
    uv = rng.standard_normal(N + 1)
    compiled = {"u": uv.copy(), "r": np.zeros(N + 1)}
    compile_nests([nest], bindings, cache=False)(compiled)
    interp = {"u": uv.copy(), "r": np.zeros(N + 1)}
    interpret_nests([nest], interp, bindings)
    np.testing.assert_array_equal(compiled["r"], interp["r"])


def test_guard_normalisation_matches_interpreter_2d(rng):
    from repro.core.loopnest import LoopNest, Statement
    from repro.runtime import interpret_nests

    N = 8
    guard = sp.And(sp.Gt(i, 0), sp.Lt(j, n), sp.Le(1, j), sp.Gt(n, i))
    nest = LoopNest(
        statements=(Statement(lhs=r(i, j), rhs=u(i, j) + 1, op="=", guard=guard),),
        counters=(i, j),
        bounds={i: (0, n), j: (0, n)},
    )
    bindings = Bindings(sizes={n: N})
    uv = rng.standard_normal((N + 1, N + 1))
    compiled = {"u": uv.copy(), "r": np.zeros((N + 1, N + 1))}
    compile_nests([nest], bindings, cache=False)(compiled)
    interp = {"u": uv.copy(), "r": np.zeros((N + 1, N + 1))}
    interpret_nests([nest], interp, bindings)
    np.testing.assert_array_equal(compiled["r"], interp["r"])


def test_unsupported_guard_still_raises():
    from repro.core.loopnest import LoopNest, Statement

    nest = LoopNest(
        statements=(
            Statement(lhs=r(i), rhs=u(i), op="=", guard=sp.Eq(i, 3)),
        ),
        counters=(i,),
        bounds={i: (0, n)},
    )
    with pytest.raises(KernelError, match="unsupported guard"):
        compile_nests([nest], Bindings(sizes={n: 8}), cache=False)


def test_counter_vs_counter_guard_raises():
    """Guards relating two counters are not interval boxes; reject them."""
    from repro.core.loopnest import LoopNest, Statement

    nest = LoopNest(
        statements=(
            Statement(lhs=r(i, j), rhs=u(i, j), op="=", guard=sp.Ge(i, j)),
        ),
        counters=(i, j),
        bounds={i: (0, n), j: (0, n)},
    )
    with pytest.raises(KernelError, match="unsupported guard"):
        compile_nests([nest], Bindings(sizes={n: 8}), cache=False)


def test_uninterpreted_function_execution(rng):
    """User-provided implementations bind to uninterpreted calls."""
    f = sp.Function("f")
    nest = make_loop_nest(
        lhs=r(i), rhs=f(u(i - 1), u(i + 1)), counters=[i], bounds={i: [1, n - 1]}
    )
    N = 12
    impl = {"f": lambda a, b: a * a + 3 * b}
    k = compile_nests([nest], Bindings(sizes={n: N}, functions=impl))
    uv = rng.standard_normal(N + 1)
    arrays = {"u": uv, "r": np.zeros(N + 1)}
    k(arrays)
    np.testing.assert_allclose(
        arrays["r"][1:N], uv[0 : N - 1] ** 2 + 3 * uv[2 : N + 1]
    )


def test_uninterpreted_derivative_execution(rng):
    """Adjoints of uninterpreted bodies call user derivative routines."""
    f = sp.Function("f")
    nest = make_loop_nest(
        lhs=r(i), rhs=f(u(i - 1), u(i + 1)), counters=[i], bounds={i: [1, n - 1]}
    )
    amap = {r: sp.Function("r_b"), u: sp.Function("u_b")}
    nests = adjoint_loops(nest, amap)
    N = 12
    impl = {
        "f": lambda a, b: a * a + 3 * b,
        "f_d1": lambda a, b: 2 * a,
        "f_d2": lambda a, b: 3.0 * np.ones_like(np.asarray(b)),
    }
    k = compile_nests(nests, Bindings(sizes={n: N}, functions=impl))
    uv = rng.standard_normal(N + 1)
    seed = rng.standard_normal(N + 1)
    arrays = {"u": uv, "r_b": seed, "u_b": np.zeros(N + 1)}
    k(arrays)
    # Analytic adjoint: u_b[j] += 2 u[j] rb[j+1] + 3 rb[j-1] where valid.
    expected = np.zeros(N + 1)
    for it in range(1, N):
        expected[it - 1] += 2 * uv[it - 1] * seed[it]
        expected[it + 1] += 3 * seed[it]
    np.testing.assert_allclose(arrays["u_b"], expected, rtol=1e-12, atol=1e-14)
