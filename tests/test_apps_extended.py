"""Tests for the extended application problems (advection, anisotropic)."""

import numpy as np
import pytest
import sympy as sp

from repro.apps import advection_problem, anisotropic_problem
from repro.core import adjoint_loops
from repro.runtime import compile_nests
from repro.verify import compare_adjoints, dot_product_test, finite_difference_test


def test_advection_orders():
    p1 = advection_problem(1)
    p2 = advection_problem(2)
    assert p1.halo == 1 and p2.halo == 2
    with pytest.raises(ValueError):
        advection_problem(3)


def test_advection_is_asymmetric():
    """All read offsets are on one side: the TF-MAD-impossible case."""
    prob = advection_problem(2)
    from repro.core.accesses import extract_access

    offsets = set()
    for acc in prob.primal.statements[0].read_accesses():
        offsets.add(extract_access(acc, prob.primal.counters).offsets[0])
    assert offsets == {0, -1, -2}


def test_advection_adjoint_core_shifted_downwind():
    """Shifting by -o moves the adjoint core window downwind ([s, e-2])."""
    prob = advection_problem(2)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    core = [x for x in nests if x.name.endswith("core")][0]
    i = prob.primal.counters[0]
    n = prob.size_symbol
    # primal bounds [2, n]; offsets {-2,-1,0} -> core [2+0, n-2].
    assert core.bounds[i] == (sp.Integer(2), n - 2)


@pytest.mark.parametrize("order", [1, 2])
def test_advection_verification(order):
    prob = advection_problem(order)
    assert compare_adjoints(prob, n=40).passed(1e-12)
    assert dot_product_test(prob, n=40).passed
    assert finite_difference_test(prob, n=40).passed(5e-5)


def test_advection_loop_count():
    """Three one-sided offsets -> 2*3-1 = 5 nests."""
    prob = advection_problem(2)
    assert len(adjoint_loops(prob.primal, prob.adjoint_map)) == 5


def test_anisotropic_is_dense_nine_point():
    prob = anisotropic_problem()
    from repro.core.accesses import extract_access

    offsets = set()
    for acc in prob.primal.statements[0].read_accesses():
        pat = extract_access(acc, prob.primal.counters)
        if pat.name == "u_1":
            offsets.add(pat.offset_for(prob.primal.counters))
    assert len(offsets) == 9  # full 3x3


def test_anisotropic_adjoint_25_nests():
    prob = anisotropic_problem()
    assert len(adjoint_loops(prob.primal, prob.adjoint_map)) == 25


def test_anisotropic_verification():
    prob = anisotropic_problem()
    assert compare_adjoints(prob, n=16).passed(1e-12)
    assert dot_product_test(prob, n=16).passed


def test_anisotropic_active_coefficient():
    prob = anisotropic_problem(active_k=True)
    assert "kxy" in prob.active_input_names()
    assert dot_product_test(prob, n=14).passed
    # kxy is read only at the centre: its adjoint needs just one region
    # constraint-wise, but rides along in the shared split.
    res = finite_difference_test(prob, n=14)
    assert res.passed(5e-5)


def test_advection_transport_sanity():
    """A step profile moves right by ~C cells per step under advection."""
    prob = advection_problem(1)
    N = 100
    arrays = {"u": np.zeros(N + 1), "u_1": np.zeros(N + 1)}
    arrays["u_1"][:30] = 1.0
    compile_nests([prob.primal], prob.bindings(N, C=0.5))(arrays)
    # The front (around i=30) moved right: value at 30 increased.
    assert arrays["u"][30] > 0.4
    assert arrays["u"][60] == 0.0
