"""Tests for the conventional-AD baselines (scatter, atomics, C output)."""

import numpy as np
import sympy as sp
import pytest

from repro.apps import burgers_problem, heat_problem, wave_problem
from repro.baselines import (
    AtomicScatterKernel,
    cse_statements,
    print_function_c_atomic,
    tapenade_style_adjoint,
)
from repro.core import adjoint_loops
from repro.runtime import Bindings, compile_nests
from repro.runtime.compiler import KernelError


def test_scatter_adjoint_structure():
    prob = wave_problem(3, active_c=False)
    scat = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    # One scattered update per active input access: 7 (u_1 star) + 1 (u_2).
    assert len(scat.statements) == 8
    assert scat.bounds == prob.primal.bounds
    assert all(st.op == "+=" for st in scat.statements)


def test_scatter_equals_gather(any_problem, rng):
    prob, N = any_problem
    gather = adjoint_loops(prob.primal, prob.adjoint_map)
    scat = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    b = prob.bindings(N)
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    a1 = {k: v.copy() for k, v in base.items()}
    a2 = {k: v.copy() for k, v in base.items()}
    compile_nests(gather, b)(a1)
    compile_nests([scat], b)(a2)
    name_map = prob.adjoint_name_map()
    for prim in prob.active_input_names():
        np.testing.assert_allclose(
            a1[name_map[prim]], a2[name_map[prim]], rtol=1e-12, atol=1e-13
        )


def test_atomic_kernel_equals_scatter(rng):
    prob = heat_problem(2)
    N = 14
    scat = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    kernel = compile_nests([scat], prob.bindings(N))
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    a1 = {k: v.copy() for k, v in base.items()}
    a2 = {k: v.copy() for k, v in base.items()}
    kernel(a1)
    AtomicScatterKernel(kernel)(a2)
    np.testing.assert_allclose(a1["u_1_b"], a2["u_1_b"], rtol=1e-12, atol=1e-13)


def test_atomic_kernel_rejects_assignment():
    prob = heat_problem(1)
    kernel = compile_nests([prob.primal], prob.bindings(10))
    # primal uses '+='; force an '=' to check rejection
    from repro.core import LoopNest, Statement
    import sympy as sp

    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = LoopNest(
        statements=(Statement(lhs=r(i), rhs=u(i), op="="),),
        counters=(i,),
        bounds={i: (1, n - 1)},
    )
    k2 = compile_nests([nest], Bindings(sizes={n: 10}))
    with pytest.raises(KernelError):
        AtomicScatterKernel(k2)


def test_cse_reduces_ops():
    """Tapenade's tempb factoring: CSE reduces the scatter op count."""
    prob = wave_problem(3, active_c=False)
    scat = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    before, after = cse_statements(scat)
    assert after < before


def test_atomic_c_output_matches_figure5_style():
    prob = wave_problem(3, active_c=False)
    scat = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    code = print_function_c_atomic("wave3d_b_atomic", scat)
    assert "#pragma omp parallel for private(i,j,k)" in code
    assert code.count("#pragma omp atomic") == 8
    # Tapenade iterates backwards.
    assert "for (i = n - 2; i >= 1; --i)" in code
    assert "u_1_b[i - 1][j][k] +=" in code


def test_atomic_kernel_on_burgers(rng):
    prob = burgers_problem(1)
    N = 30
    scat = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    kernel = compile_nests([scat], prob.bindings(N))
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    a1 = {k: v.copy() for k, v in base.items()}
    a2 = {k: v.copy() for k, v in base.items()}
    kernel(a1)
    AtomicScatterKernel(kernel)(a2)
    np.testing.assert_allclose(a1["u_1_b"], a2["u_1_b"], rtol=1e-12, atol=1e-13)
