"""CLI tests."""

import pytest

from repro.cli import main


def test_generate_builtin_c(capsys):
    assert main(["generate", "--problem", "wave1d", "--backend", "c"]) == 0
    out = capsys.readouterr().out
    assert "void wave1d(" in out
    assert "void wave1d_b(" in out


def test_generate_primal_only(capsys):
    main(["generate", "--problem", "heat2d", "--kind", "primal"])
    out = capsys.readouterr().out
    assert "heat2d_b" not in out


def test_generate_adjoint_strategy_and_merge(capsys):
    main(["generate", "--problem", "heat1d", "--kind", "adjoint",
          "--strategy", "guarded", "--no-merge"])
    out = capsys.readouterr().out
    assert "if (" in out


def test_generate_cuda_backend(capsys):
    main(["generate", "--problem", "burgers1d", "--backend", "cuda",
          "--kind", "adjoint"])
    out = capsys.readouterr().out
    assert "__global__" in out


def test_generate_to_file(tmp_path, capsys):
    out_file = tmp_path / "code.c"
    main(["generate", "--problem", "wave1d", "--output", str(out_file)])
    assert "void wave1d(" in out_file.read_text()
    assert capsys.readouterr().out == ""


def test_generate_from_frontend_file(tmp_path, capsys):
    src = tmp_path / "stencil.txt"
    src.write_text(
        "stencil lap1d { iterate i = 1 .. n-2 "
        "  r[i] = u[i-1] - 2*u[i] + u[i+1] }"
    )
    assert main(["generate", "--file", str(src), "--kind", "adjoint"]) == 0
    out = capsys.readouterr().out
    assert "void lap1d_b(" in out
    assert "u_b[i] +=" in out


def test_verify_command(capsys):
    assert main(["verify", "--problem", "burgers1d"]) == 0
    out = capsys.readouterr().out
    assert "all adjoints agree" in out


def test_verify_custom_n(capsys):
    assert main(["verify", "--problem", "heat1d", "--n", "30"]) == 0


def test_figures_single(capsys):
    assert main(["figures", "--figure", "fig10"]) == 0
    out = capsys.readouterr().out
    assert "Runtimes of the Wave Equation on Broadwell" in out
    assert "4.14" in out  # paper value column


def test_figures_all(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    for fig in ("fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
                "fig14", "fig15"):
        assert fig in out


def test_loop_counts(capsys):
    assert main(["loop-counts"]) == 0
    out = capsys.readouterr().out
    assert "wave3d" in out and "53" in out


def test_bench_quick_writes_runtime_record(tmp_path, capsys):
    import json

    out_file = tmp_path / "BENCH_runtime.json"
    assert main([
        "bench", "--quick", "--problem", "heat1d", "--n", "24",
        "--output", str(out_file),
    ]) == 0
    record = json.loads(out_file.read_text())
    assert record["benchmark"] == "steady_state_bound_plan"
    assert record["problem"] == "heat1d"
    case = record["cases"]["serial"]
    assert case["bitwise_identical"] is True
    assert case["steady_net_alloc_bytes"] == 0
    assert case["bound_us_per_call"] > 0
    out = capsys.readouterr().out
    assert "speedup" in out and "bitwise=ok" in out


def test_sweep_quick_writes_ensemble_record(tmp_path, capsys):
    import json

    out_file = tmp_path / "BENCH_ensemble.json"
    assert main([
        "sweep", "--quick", "--problem", "heat1d", "--n", "16",
        "--members", "6", "--param", "alpha=0.1,0.2",
        "--output", str(out_file),
    ]) == 0
    record = json.loads(out_file.read_text())
    assert record["benchmark"] == "ensemble_sweep"
    assert record["problem"] == "heat1d"
    assert record["members"] == 6
    assert record["bitwise_identical"] is True
    assert record["param_grid"] == {"alpha": [0.1, 0.2]}
    assert len(record["groups"]) == 2  # one EnsemblePlan per grid point
    assert [r["member"] for r in record["member_results"]] == list(range(6))
    # members cycle over the grid: 0,2,4 -> alpha=0.1; 1,3,5 -> alpha=0.2
    assert record["member_results"][0]["params"] == {"alpha": 0.1}
    assert record["member_results"][1]["params"] == {"alpha": 0.2}
    for member in record["member_results"]:
        assert member["gradients"]["u_1_b"] > 0
    assert record["ensemble_us_per_member_step"] > 0
    out = capsys.readouterr().out
    assert "throughput" in out and "bitwise=ok" in out


def test_sweep_baseline_gate(tmp_path, capsys):
    out_file = tmp_path / "BENCH_ensemble.json"
    base_file = tmp_path / "baseline.json"
    args = [
        "sweep", "--quick", "--problem", "heat1d", "--n", "16",
        "--members", "4",
    ]
    assert main([*args, "--output", str(base_file)]) == 0
    capsys.readouterr()
    assert main([
        *args, "--output", str(out_file), "--baseline", str(base_file),
    ]) == 0
    assert "ensemble baseline gate: PASS" in capsys.readouterr().out
    # mismatched context is rejected outright
    assert main([
        "sweep", "--quick", "--problem", "heat1d", "--n", "16",
        "--members", "8", "--output", str(out_file),
        "--baseline", str(base_file),
    ]) == 1
    assert "does not match" in capsys.readouterr().out
    # ... including a different parameter grid (different member
    # grouping, different fusion width: timings are not comparable)
    assert main([
        *args, "--param", "alpha=0.1,0.2", "--output", str(out_file),
        "--baseline", str(base_file),
    ]) == 1
    assert "param_grid" in capsys.readouterr().out


def test_sweep_rejects_unknown_parameter(capsys):
    assert main([
        "sweep", "--quick", "--problem", "heat1d", "--members", "2",
        "--param", "nosuch=1.0",
    ]) == 2
    assert "unknown parameter" in capsys.readouterr().out


def test_sweep_native_backend_falls_back_cleanly(tmp_path, monkeypatch):
    """--backend native without a toolchain falls back, results intact."""
    import json
    import warnings

    monkeypatch.setenv("REPRO_CC", str(tmp_path / "no-such-compiler"))
    out_file = tmp_path / "BENCH_ensemble.json"
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # fallback warn-once
        assert main([
            "sweep", "--quick", "--problem", "heat1d", "--n", "16",
            "--members", "4", "--backend", "native",
            "--output", str(out_file),
        ]) == 0
    record = json.loads(out_file.read_text())
    assert record["backend"] == "native"
    assert record["bitwise_identical"] is True
    # no toolchain: every statement ran batched python, none native
    assert record["groups"][0]["native_statements"] == 0
    assert record["groups"][0]["batched_statements"] > 0


def test_adjoint_writes_checkpoint_record(tmp_path, capsys):
    import json

    out_file = tmp_path / "BENCH_checkpoint.json"
    assert main([
        "adjoint", "--problem", "heat1d", "--n", "14", "--steps", "6",
        "--snaps", "2", "--reps", "1", "--output", str(out_file),
    ]) == 0
    record = json.loads(out_file.read_text())
    assert record["benchmark"] == "checkpointed_adjoint"
    assert record["bitwise_identical"] is True
    assert record["forward_steps_per_sweep"] == record["predicted_forward_steps"]
    assert record["memory_ratio"] <= 2 / 6 + 1e-9
    out = capsys.readouterr().out
    assert "bitwise=ok" in out


def test_adjoint_ensemble_members_and_baseline_gate(tmp_path, capsys):
    out_file = tmp_path / "BENCH_checkpoint.json"
    baseline = tmp_path / "baseline_checkpoint.json"
    argv = [
        "adjoint", "--problem", "burgers1d", "--n", "20", "--steps", "5",
        "--snaps", "2", "--members", "3", "--reps", "1",
    ]
    assert main(argv + ["--output", str(baseline)]) == 0
    assert main(
        argv + ["--output", str(out_file), "--baseline", str(baseline),
                "--max-slowdown", "1000"]
    ) == 0
    out = capsys.readouterr().out
    assert "checkpoint baseline gate: PASS" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_problem_rejected():
    with pytest.raises(SystemExit):
        main(["generate", "--problem", "nosuch"])
