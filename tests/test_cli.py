"""CLI tests."""

import pytest

from repro.cli import main


def test_generate_builtin_c(capsys):
    assert main(["generate", "--problem", "wave1d", "--backend", "c"]) == 0
    out = capsys.readouterr().out
    assert "void wave1d(" in out
    assert "void wave1d_b(" in out


def test_generate_primal_only(capsys):
    main(["generate", "--problem", "heat2d", "--kind", "primal"])
    out = capsys.readouterr().out
    assert "heat2d_b" not in out


def test_generate_adjoint_strategy_and_merge(capsys):
    main(["generate", "--problem", "heat1d", "--kind", "adjoint",
          "--strategy", "guarded", "--no-merge"])
    out = capsys.readouterr().out
    assert "if (" in out


def test_generate_cuda_backend(capsys):
    main(["generate", "--problem", "burgers1d", "--backend", "cuda",
          "--kind", "adjoint"])
    out = capsys.readouterr().out
    assert "__global__" in out


def test_generate_to_file(tmp_path, capsys):
    out_file = tmp_path / "code.c"
    main(["generate", "--problem", "wave1d", "--output", str(out_file)])
    assert "void wave1d(" in out_file.read_text()
    assert capsys.readouterr().out == ""


def test_generate_from_frontend_file(tmp_path, capsys):
    src = tmp_path / "stencil.txt"
    src.write_text(
        "stencil lap1d { iterate i = 1 .. n-2 "
        "  r[i] = u[i-1] - 2*u[i] + u[i+1] }"
    )
    assert main(["generate", "--file", str(src), "--kind", "adjoint"]) == 0
    out = capsys.readouterr().out
    assert "void lap1d_b(" in out
    assert "u_b[i] +=" in out


def test_verify_command(capsys):
    assert main(["verify", "--problem", "burgers1d"]) == 0
    out = capsys.readouterr().out
    assert "all adjoints agree" in out


def test_verify_custom_n(capsys):
    assert main(["verify", "--problem", "heat1d", "--n", "30"]) == 0


def test_figures_single(capsys):
    assert main(["figures", "--figure", "fig10"]) == 0
    out = capsys.readouterr().out
    assert "Runtimes of the Wave Equation on Broadwell" in out
    assert "4.14" in out  # paper value column


def test_figures_all(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    for fig in ("fig08", "fig09", "fig10", "fig11", "fig12", "fig13",
                "fig14", "fig15"):
        assert fig in out


def test_loop_counts(capsys):
    assert main(["loop-counts"]) == 0
    out = capsys.readouterr().out
    assert "wave3d" in out and "53" in out


def test_bench_quick_writes_runtime_record(tmp_path, capsys):
    import json

    out_file = tmp_path / "BENCH_runtime.json"
    assert main([
        "bench", "--quick", "--problem", "heat1d", "--n", "24",
        "--output", str(out_file),
    ]) == 0
    record = json.loads(out_file.read_text())
    assert record["benchmark"] == "steady_state_bound_plan"
    assert record["problem"] == "heat1d"
    case = record["cases"]["serial"]
    assert case["bitwise_identical"] is True
    assert case["steady_net_alloc_bytes"] == 0
    assert case["bound_us_per_call"] > 0
    out = capsys.readouterr().out
    assert "speedup" in out and "bitwise=ok" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_problem_rejected():
    with pytest.raises(SystemExit):
        main(["generate", "--problem", "nosuch"])
