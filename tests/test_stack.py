"""Tests for the stack-based conventional adjoint (Tapenade push/pop model)."""

import numpy as np
import pytest

from repro.apps import burgers_problem, heat_problem
from repro.baselines.stack import StackAdjoint, ValueStack, nonlinear_intermediates
from repro.core import adjoint_loops
from repro.runtime import compile_nests
from repro.runtime.compiler import KernelError


def test_value_stack_lifo_roundtrip(rng):
    st = ValueStack(chunk=7)
    a = rng.standard_normal(23)
    b = rng.standard_normal(11)
    st.push(a)
    st.push(b)
    np.testing.assert_array_equal(st.pop(11), b)
    np.testing.assert_array_equal(st.pop(23), a)
    assert st.depth == 0


def test_value_stack_tracks_traffic():
    st = ValueStack(chunk=4)
    st.push(np.zeros(10))
    assert st.bytes_pushed == 80


def test_value_stack_underflow():
    st = ValueStack()
    st.push(np.zeros(4))
    st.pop(4)
    with pytest.raises(KernelError):
        st.pop(1)


def test_nonlinear_intermediates_burgers():
    prob = burgers_problem(1)
    inter = nonlinear_intermediates(prob.primal)
    assert len(inter) == 2  # Max(u_1(i), 0) and Min(u_1(i), 0)


def test_nonlinear_intermediates_linear_problem_empty():
    prob = heat_problem(1)
    assert nonlinear_intermediates(prob.primal) == []


def test_stack_adjoint_matches_gather(rng):
    """The stack-based reverse sweep computes the same adjoint."""
    prob = burgers_problem(1)
    N = 40
    bindings = prob.bindings(N)
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))

    ref = {k: v.copy() for k, v in base.items()}
    compile_nests(adjoint_loops(prob.primal, prob.adjoint_map), bindings)(ref)

    sa = StackAdjoint(prob.primal, prob.adjoint_map, bindings, chunk=64)
    arrays = {k: v.copy() for k, v in base.items()}
    stack = sa.run(arrays)
    np.testing.assert_allclose(ref["u_1_b"], arrays["u_1_b"], rtol=1e-12, atol=1e-13)
    # Both intermediates crossed the stack.
    assert stack.bytes_pushed > 0
    assert stack.depth == 0  # fully drained


def test_stack_adjoint_linear_problem_no_push(rng):
    prob = heat_problem(1)
    N = 30
    bindings = prob.bindings(N)
    sa = StackAdjoint(prob.primal, prob.adjoint_map, bindings)
    assert sa.num_intermediates == 0
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    ref = {k: v.copy() for k, v in base.items()}
    compile_nests(adjoint_loops(prob.primal, prob.adjoint_map), bindings)(ref)
    arrays = {k: v.copy() for k, v in base.items()}
    stack = sa.run(arrays)
    np.testing.assert_allclose(ref["u_1_b"], arrays["u_1_b"], rtol=1e-12, atol=1e-13)
    assert stack.bytes_pushed == 0


def test_stack_adjoint_2d(rng):
    prob = burgers_problem(2)
    N = 14
    bindings = prob.bindings(N)
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    ref = {k: v.copy() for k, v in base.items()}
    compile_nests(adjoint_loops(prob.primal, prob.adjoint_map), bindings)(ref)
    sa = StackAdjoint(prob.primal, prob.adjoint_map, bindings, chunk=32)
    arrays = {k: v.copy() for k, v in base.items()}
    sa.run(arrays)
    np.testing.assert_allclose(ref["u_1_b"], arrays["u_1_b"], rtol=1e-12, atol=1e-13)
