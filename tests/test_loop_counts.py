"""Experiment loops334: the loop-nest counts stated in Section 3.3.4.

"With a primal stencil that gathers data from n points in each of d
dimensions, the number of generated adjoint loop nests is at most
(2n-1)^d.  For the one-dimensional three-point stencil in Section 3.2,
this resulted in five adjoint loops ... For a dense 3x3 stencil in two
dimensions, the number of adjoint loops would be 25, and for a dense
three-dimensional 3x3x3 stencil, 125.  If the primal stencil is ... a
star-shaped stencil such as the one shown in Section 4.1, then 53 loop
nests are needed."
"""

import itertools

import sympy as sp
import pytest

from repro.apps import burgers_problem, wave_problem
from repro.core import adjoint_loops, make_loop_nest

n = sp.Symbol("n", integer=True)


def dense_nest(dim, width):
    counters = sp.symbols("i j k", integer=True)[:dim]
    u, r = sp.Function("u"), sp.Function("r")
    half = width // 2
    offs = range(-half, half + 1)
    expr = sum(
        u(*[c + o for c, o in zip(counters, combo)])
        for combo in itertools.product(offs, repeat=dim)
    )
    return make_loop_nest(
        lhs=r(*counters), rhs=expr, counters=list(counters),
        bounds={c: [half, n - half] for c in counters},
    ), {r: sp.Function("r_b"), u: sp.Function("u_b")}


@pytest.mark.parametrize(
    "dim,width,expected",
    [(1, 3, 5), (2, 3, 25), (3, 3, 125), (1, 5, 9), (2, 5, 81)],
)
def test_dense_counts_match_formula(dim, width, expected):
    nest, amap = dense_nest(dim, width)
    assert len(adjoint_loops(nest, amap)) == expected == (2 * width - 1) ** dim


def test_wave_star_is_53():
    prob = wave_problem(3)
    assert len(adjoint_loops(prob.primal, prob.adjoint_map)) == 53


def test_burgers_1d_is_5():
    prob = burgers_problem(1)
    assert len(adjoint_loops(prob.primal, prob.adjoint_map)) == 5


def test_star_2d_is_17():
    """Figure 3's 2-D five-point star decomposes into 17 nests.

    Consistent with the paper's 53 for the 3-D star: the hierarchical
    split gives 53 = 1 + 17 + 17 + 17 + 1 across the five i-segments,
    where 17 is exactly the 2-D five-point star count.
    """
    i, j = sp.symbols("i j", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    expr = u(i - 1, j) + u(i + 1, j) + u(i, j - 1) + u(i, j + 1) + u(i, j)
    nest = make_loop_nest(
        lhs=r(i, j), rhs=expr, counters=[i, j],
        bounds={i: [1, n - 2], j: [1, n - 2]},
    )
    nests = adjoint_loops(nest, {r: sp.Function("r_b"), u: sp.Function("u_b")})
    assert len(nests) == 17


@pytest.mark.parametrize("dim", [1, 2, 3])
def test_counts_bounded_by_formula_for_stars(dim):
    counters = sp.symbols("i j k", integer=True)[:dim]
    u, r = sp.Function("u"), sp.Function("r")
    expr = u(*counters)
    for d in range(dim):
        for off in (-1, 1):
            idx = list(counters)
            idx[d] = idx[d] + off
            expr = expr + u(*idx)
    nest = make_loop_nest(
        lhs=r(*counters), rhs=expr, counters=list(counters),
        bounds={c: [1, n - 2] for c in counters},
    )
    count = len(adjoint_loops(nest, {r: sp.Function("r_b"), u: sp.Function("u_b")}))
    assert count <= (2 * 3 - 1) ** dim
