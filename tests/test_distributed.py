"""Tests for the simulated distributed-memory executor (halo exchange and
its adjoint, the reverse accumulate-back)."""

import warnings

import numpy as np
import pytest

from repro.apps import burgers_problem, heat_problem, wave_problem
from repro.core import adjoint_loops
from repro.errors import ValidationError
from repro.runtime import compile_nests
from repro.runtime.distributed import DistributedExecutor, decompose


def test_decompose_covers_and_balances():
    ranges = decompose(23, 4)
    assert ranges[0][0] == 0 and ranges[-1][1] == 22
    for (a, b), (c, d) in zip(ranges, ranges[1:]):
        assert c == b + 1
    sizes = [b - a + 1 for a, b in ranges]
    assert max(sizes) - min(sizes) <= 1


def test_decompose_more_ranks_than_rows():
    assert len(decompose(3, 10)) == 3


def test_decompose_invalid():
    with pytest.raises(ValueError):
        decompose(10, 0)


def test_scatter_gather_round_trip(rng):
    prob = heat_problem(2)
    N = 20
    arrays = prob.allocate(N, rng=rng)
    ex = DistributedExecutor(nranks=3, halo=1)
    slabs = ex.scatter(arrays)
    back = ex.gather(slabs, list(arrays), N + 1)
    for name in arrays:
        np.testing.assert_array_equal(back[name], arrays[name])


@pytest.mark.parametrize("nranks", [1, 2, 3, 5])
def test_distributed_primal_equals_global(rng, nranks):
    prob = wave_problem(2)
    N = 24
    kernel = compile_nests([prob.primal], prob.bindings(N))
    arrays = prob.allocate(N, rng=rng)

    ref = {k: v.copy() for k, v in arrays.items()}
    kernel(ref)

    ex = DistributedExecutor(nranks=nranks, halo=1)
    slabs = ex.scatter(arrays)
    ex.halo_exchange(slabs, ["u_1", "u_2", "c"])
    ex.run(kernel, slabs)
    out = ex.gather(slabs, ["u"], N + 1)
    np.testing.assert_array_equal(out["u"], ref["u"])


@pytest.mark.parametrize("nranks", [2, 3, 4])
def test_distributed_adjoint_equals_global(rng, nranks):
    """Adjoint stencils + reverse halo exchange == global adjoint."""
    prob = heat_problem(2)
    N = 24
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(N))
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))

    ref = {k: v.copy() for k, v in base.items()}
    kernel(ref)

    ex = DistributedExecutor(nranks=nranks, halo=1)
    slabs = ex.scatter(base)
    # Forward exchange for the values the adjoint reads (u_1, seed u_b).
    ex.halo_exchange(slabs, ["u_1", "u_b"])
    ex.run(kernel, slabs)
    # Reverse exchange: fold halo adjoint contributions back to owners.
    ex.halo_accumulate_back(slabs, ["u_1_b"])
    out = ex.gather(slabs, ["u_1_b"], N + 1)
    np.testing.assert_allclose(out["u_1_b"], ref["u_1_b"], rtol=1e-13, atol=1e-14)


def test_distributed_adjoint_burgers_nonlinear(rng):
    prob = burgers_problem(1)
    N = 50
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(N))
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    ref = {k: v.copy() for k, v in base.items()}
    kernel(ref)

    ex = DistributedExecutor(nranks=4, halo=1)
    slabs = ex.scatter(base)
    ex.halo_exchange(slabs, ["u_1", "u_b"])
    ex.run(kernel, slabs)
    ex.halo_accumulate_back(slabs, ["u_1_b"])
    out = ex.gather(slabs, ["u_1_b"], N + 1)
    np.testing.assert_allclose(out["u_1_b"], ref["u_1_b"], rtol=1e-13, atol=1e-14)


def test_mismatched_shapes_rejected(rng):
    ex = DistributedExecutor(nranks=2, halo=1)
    with pytest.raises(ValueError):
        ex.scatter({"a": np.zeros(5), "b": np.zeros(6)})


def test_negative_halo_rejected():
    with pytest.raises(ValueError):
        DistributedExecutor(nranks=2, halo=-1)


# -- regression tests for the three substrate bugs -------------------------


def test_gather_preserves_float32_round_trip(rng):
    """Regression: ``gather`` used to allocate with ``np.zeros(...)`` and
    no dtype, silently promoting float32 state to float64."""
    arrays = {
        "a": rng.standard_normal((13, 3)).astype(np.float32),
        "b": rng.standard_normal((13, 3)).astype(np.float32),
    }
    ex = DistributedExecutor(nranks=3, halo=1)
    slabs = ex.scatter(arrays)
    back = ex.gather(slabs, ["a", "b"], 13)
    for name in arrays:
        assert back[name].dtype == np.float32
        np.testing.assert_array_equal(back[name], arrays[name])


def test_halo_wider_than_smallest_slab_rejected():
    """Regression: a halo wider than the smallest owned slab used to make
    the exchange read a neighbour's halo rows as if they were interior.
    Now it is a typed error, at scatter time, naming the offending
    rank."""
    # decompose(9, 5) -> sizes (2, 2, 2, 2, 1): rank 4 owns one row.
    ex = DistributedExecutor(nranks=5, halo=2)
    with pytest.raises(ValidationError, match=r"rank 4 of 5"):
        ex.scatter({"x": np.zeros(9)})
    # The widest legal halo still scatters.
    assert len(DistributedExecutor(nranks=5, halo=1).scatter(
        {"x": np.zeros(9)}
    )) == 5


def test_rank_clamp_is_recorded_and_warned_once():
    """Regression: when ``nranks > extent`` the decomposition silently
    clamped while the executor kept reporting the requested value.  Now
    ``effective_nranks`` records the truth and the clamp warns once."""
    ex = DistributedExecutor(nranks=10, halo=0)
    assert ex.effective_nranks is None  # unknown before the first scatter
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        slabs = ex.scatter({"x": np.arange(3.0)})
        ex.scatter({"x": np.arange(3.0)})  # second scatter: no re-warn
    assert ex.nranks == 10
    assert ex.effective_nranks == 3
    assert len(slabs) == 3
    clamp = [w for w in caught if "using 3 rank(s)" in str(w.message)]
    assert len(clamp) == 1
    assert issubclass(clamp[0].category, RuntimeWarning)


# -- partition / roundtrip properties -------------------------------------


@pytest.mark.parametrize("extent", [1, 2, 3, 7, 16, 23, 64, 101])
@pytest.mark.parametrize("nranks", [1, 2, 3, 4, 7, 12])
def test_decompose_partition_property(extent, nranks):
    """Ownership ranges exactly partition [0, extent), near-balanced."""
    ranges = decompose(extent, nranks)
    assert len(ranges) == min(nranks, extent)
    covered = [g for lo, hi in ranges for g in range(lo, hi + 1)]
    assert covered == list(range(extent))  # disjoint, ordered, complete
    sizes = [hi - lo + 1 for lo, hi in ranges]
    assert max(sizes) - min(sizes) <= 1


@pytest.mark.parametrize("halo", [0, 1, 2, 3])
@pytest.mark.parametrize("nranks", [1, 2, 3, 5])
def test_scatter_gather_roundtrip_property(rng, halo, nranks):
    """gather(scatter(x)) == x for every halo width and rank count."""
    extent = 21
    arrays = {
        "a": rng.standard_normal((extent, 4)),
        "b": rng.standard_normal((extent, 4)),
    }
    ex = DistributedExecutor(nranks=nranks, halo=halo)
    slabs = ex.scatter(arrays)
    # Owned ranges tile the domain with no gaps or overlaps.
    owned = [g for s in slabs for g in range(s.own_lo, s.own_hi + 1)]
    assert owned == list(range(extent))
    back = ex.gather(slabs, ["a", "b"], extent)
    for name in arrays:
        np.testing.assert_array_equal(back[name], arrays[name])


@pytest.mark.parametrize("nranks", [2, 3, 5])
def test_halo_exchange_matches_global_rows(rng, nranks):
    """After the exchange, every local row equals the global row it
    shadows — interior and halo alike."""
    extent = 19
    arrays = {"x": rng.standard_normal(extent)}
    ex = DistributedExecutor(nranks=nranks, halo=2)
    slabs = ex.scatter(arrays)
    for slab in slabs:  # dirty the halos so the exchange must fix them
        lo = slab.own_lo - slab.slab_lo
        hi = slab.own_hi - slab.slab_lo
        slab.arrays["x"][:lo] = np.nan
        slab.arrays["x"][hi + 1:] = np.nan
    ex.halo_exchange(slabs, ["x"])
    for slab in slabs:
        local = slab.arrays["x"]
        for k in range(local.shape[0]):
            g = slab.slab_lo + k
            # Halo layers beyond the exchange width stay untouched only
            # at the domain edges, where they do not exist.
            np.testing.assert_array_equal(local[k], arrays["x"][g])


@pytest.mark.parametrize("halo", [1, 2, 3])
def test_primal_identical_for_any_halo_at_least_radius(rng, halo):
    """Halo width is an implementation choice: any width >= the stencil
    radius gives the bitwise-identical global result."""
    prob = wave_problem(2)
    N = 24
    kernel = compile_nests([prob.primal], prob.bindings(N))
    arrays = prob.allocate(N, rng=rng)
    ref = {k: v.copy() for k, v in arrays.items()}
    kernel(ref)
    ex = DistributedExecutor(nranks=3, halo=halo)
    slabs = ex.scatter(arrays)
    ex.halo_exchange(slabs, ["u_1", "u_2", "c"])
    ex.run(kernel, slabs)
    out = ex.gather(slabs, ["u"], N + 1)
    np.testing.assert_array_equal(out["u"], ref["u"])


@pytest.mark.parametrize("nranks", [2, 3, 5])
@pytest.mark.parametrize("halo", [1, 2])
def test_accumulate_back_conserves_mass_and_zeroes_halos(rng, nranks, halo):
    """The adjoint exchange moves halo contributions, never loses them:
    the total over all local storage is unchanged, halos end up zero,
    and the gathered owners hold every contribution."""
    extent = 17
    ex = DistributedExecutor(nranks=nranks, halo=halo)
    slabs = ex.scatter({"g": np.zeros(extent)})
    rng_local = np.random.default_rng(7)
    for slab in slabs:  # arbitrary adjoint contributions, halos included
        slab.arrays["g"][:] = rng_local.standard_normal(
            slab.arrays["g"].shape
        )
    total_before = sum(float(s.arrays["g"].sum()) for s in slabs)
    ex.halo_accumulate_back(slabs, ["g"])
    total_after = sum(float(s.arrays["g"].sum()) for s in slabs)
    assert total_after == pytest.approx(total_before, rel=1e-12)
    for slab in slabs:
        lo = slab.own_lo - slab.slab_lo
        hi = slab.own_hi - slab.slab_lo
        assert np.all(slab.arrays["g"][:lo] == 0.0)
        assert np.all(slab.arrays["g"][hi + 1:] == 0.0)
    gathered = ex.gather(slabs, ["g"], extent)
    assert float(gathered["g"].sum()) == pytest.approx(total_before, rel=1e-12)


@pytest.mark.parametrize("nranks", [2, 4])
def test_accumulate_back_is_the_transpose_of_the_exchange(rng, nranks):
    """Dot-product (adjoint) identity: <F x, y> == <x, F^T y> where F is
    the forward halo exchange and F^T the accumulate-back, both viewed
    as linear maps on the concatenation of all local storage."""
    extent = 15
    halo = 2
    ex = DistributedExecutor(nranks=nranks, halo=halo)

    def fresh(seed):
        slabs = ex.scatter({"x": np.zeros(extent)})
        r = np.random.default_rng(seed)
        for slab in slabs:
            slab.arrays["x"][:] = r.standard_normal(slab.arrays["x"].shape)
        return slabs

    def flat(slabs):
        return np.concatenate([s.arrays["x"] for s in slabs])

    xs, ys = fresh(1), fresh(2)
    x0, y0 = flat(xs), flat(ys)
    ex.halo_exchange(xs, ["x"])  # xs <- F x
    ex.halo_accumulate_back(ys, ["x"])  # ys <- F^T y
    lhs = float(flat(xs) @ y0)
    rhs = float(x0 @ flat(ys))
    assert lhs == pytest.approx(rhs, rel=1e-12)
