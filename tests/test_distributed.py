"""Tests for the simulated distributed-memory executor (halo exchange and
its adjoint, the reverse accumulate-back)."""

import numpy as np
import pytest

from repro.apps import burgers_problem, heat_problem, wave_problem
from repro.core import adjoint_loops
from repro.runtime import compile_nests
from repro.runtime.distributed import DistributedExecutor, decompose


def test_decompose_covers_and_balances():
    ranges = decompose(23, 4)
    assert ranges[0][0] == 0 and ranges[-1][1] == 22
    for (a, b), (c, d) in zip(ranges, ranges[1:]):
        assert c == b + 1
    sizes = [b - a + 1 for a, b in ranges]
    assert max(sizes) - min(sizes) <= 1


def test_decompose_more_ranks_than_rows():
    assert len(decompose(3, 10)) == 3


def test_decompose_invalid():
    with pytest.raises(ValueError):
        decompose(10, 0)


def test_scatter_gather_round_trip(rng):
    prob = heat_problem(2)
    N = 20
    arrays = prob.allocate(N, rng=rng)
    ex = DistributedExecutor(nranks=3, halo=1)
    slabs = ex.scatter(arrays)
    back = ex.gather(slabs, list(arrays), N + 1)
    for name in arrays:
        np.testing.assert_array_equal(back[name], arrays[name])


@pytest.mark.parametrize("nranks", [1, 2, 3, 5])
def test_distributed_primal_equals_global(rng, nranks):
    prob = wave_problem(2)
    N = 24
    kernel = compile_nests([prob.primal], prob.bindings(N))
    arrays = prob.allocate(N, rng=rng)

    ref = {k: v.copy() for k, v in arrays.items()}
    kernel(ref)

    ex = DistributedExecutor(nranks=nranks, halo=1)
    slabs = ex.scatter(arrays)
    ex.halo_exchange(slabs, ["u_1", "u_2", "c"])
    ex.run(kernel, slabs)
    out = ex.gather(slabs, ["u"], N + 1)
    np.testing.assert_array_equal(out["u"], ref["u"])


@pytest.mark.parametrize("nranks", [2, 3, 4])
def test_distributed_adjoint_equals_global(rng, nranks):
    """Adjoint stencils + reverse halo exchange == global adjoint."""
    prob = heat_problem(2)
    N = 24
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(N))
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))

    ref = {k: v.copy() for k, v in base.items()}
    kernel(ref)

    ex = DistributedExecutor(nranks=nranks, halo=1)
    slabs = ex.scatter(base)
    # Forward exchange for the values the adjoint reads (u_1, seed u_b).
    ex.halo_exchange(slabs, ["u_1", "u_b"])
    ex.run(kernel, slabs)
    # Reverse exchange: fold halo adjoint contributions back to owners.
    ex.halo_accumulate_back(slabs, ["u_1_b"])
    out = ex.gather(slabs, ["u_1_b"], N + 1)
    np.testing.assert_allclose(out["u_1_b"], ref["u_1_b"], rtol=1e-13, atol=1e-14)


def test_distributed_adjoint_burgers_nonlinear(rng):
    prob = burgers_problem(1)
    N = 50
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    kernel = compile_nests(nests, prob.bindings(N))
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    ref = {k: v.copy() for k, v in base.items()}
    kernel(ref)

    ex = DistributedExecutor(nranks=4, halo=1)
    slabs = ex.scatter(base)
    ex.halo_exchange(slabs, ["u_1", "u_b"])
    ex.run(kernel, slabs)
    ex.halo_accumulate_back(slabs, ["u_1_b"])
    out = ex.gather(slabs, ["u_1_b"], N + 1)
    np.testing.assert_allclose(out["u_1_b"], ref["u_1_b"], rtol=1e-13, atol=1e-14)


def test_mismatched_shapes_rejected(rng):
    ex = DistributedExecutor(nranks=2, halo=1)
    with pytest.raises(ValueError):
        ex.scatter({"a": np.zeros(5), "b": np.zeros(6)})


def test_negative_halo_rejected():
    with pytest.raises(ValueError):
        DistributedExecutor(nranks=2, halo=-1)
