"""Exact transpose verification via dense Jacobian assembly."""

import numpy as np
import pytest

from repro.apps import (
    advection_problem,
    anisotropic_problem,
    burgers_problem,
    conv_problem,
    heat_problem,
    wave_problem,
)
from repro.verify import (
    assemble_jacobian_adjoint,
    assemble_jacobian_tangent,
    transpose_check,
)

CASES = [
    (lambda: heat_problem(1), 8, "u_1"),
    (lambda: heat_problem(2), 5, "u_1"),
    (lambda: wave_problem(1), 8, "u_1"),
    (lambda: wave_problem(1, active_c=True), 8, "c"),
    (lambda: burgers_problem(1), 8, "u_1"),
    (lambda: advection_problem(2), 8, "u_1"),
    (lambda: anisotropic_problem(), 5, "u_1"),
    (lambda: conv_problem(3), 5, "img"),
]


@pytest.mark.parametrize(
    "factory,n,wrt", CASES, ids=[f.__code__.co_consts[0] if False else str(k)
                                 for k, f in enumerate(c[0] for c in CASES)]
)
def test_adjoint_jacobian_is_transpose(factory, n, wrt):
    prob = factory()
    assert transpose_check(prob, n, wrt=wrt) <= 1e-12


def test_jacobian_shapes_consistent(rng):
    prob = heat_problem(1)
    n = 8
    inputs = prob.allocate(n, rng=rng)
    Jt = assemble_jacobian_tangent(prob, n, inputs, "u_1")
    Ja = assemble_jacobian_adjoint(prob, n, inputs, "u_1")
    # heat interior is [1, n-2]: n-2 rows over n+1 unknowns.
    assert Jt.shape == Ja.shape == (n - 2, n + 1)


def test_jacobian_structure_tridiagonal(rng):
    """The heat stencil's Jacobian row i has entries at i-1, i, i+1 only."""
    prob = heat_problem(1)
    n = 10
    inputs = prob.allocate(n, rng=rng)
    J = assemble_jacobian_tangent(prob, n, inputs, "u_1")
    alpha = prob.param_defaults["alpha"]
    for row in range(J.shape[0]):
        i = row + 1  # interior index
        nz = np.nonzero(J[row])[0]
        assert set(nz) <= {i - 1, i, i + 1}
        assert J[row, i - 1] == pytest.approx(alpha)
        assert J[row, i] == pytest.approx(1 - 2 * alpha)


def test_guarded_strategy_transpose():
    prob = heat_problem(1)
    assert transpose_check(prob, 8, strategy="guarded") <= 1e-12
