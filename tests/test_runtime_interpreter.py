"""Reference interpreter tests: exact agreement with compiled kernels."""

import numpy as np
import sympy as sp
import pytest

from repro.core import adjoint_loops, make_loop_nest
from repro.runtime import Bindings, compile_nests, interpret_nests

i, j = sp.symbols("i j", integer=True)
n = sp.Symbol("n", integer=True)
u, r = sp.Function("u"), sp.Function("r")


def test_interpreter_matches_compiled_primal(any_problem, rng):
    prob, N = any_problem
    a1 = prob.allocate(N, rng=rng)
    a2 = {k: v.copy() for k, v in a1.items()}
    compile_nests([prob.primal], prob.bindings(N))(a1)
    interpret_nests([prob.primal], a2, prob.bindings(N))
    np.testing.assert_allclose(
        a1[prob.output_name], a2[prob.output_name], rtol=1e-12, atol=1e-14
    )


def test_interpreter_matches_compiled_adjoint(rng):
    from repro.apps import burgers_problem

    prob = burgers_problem(1)
    N = 24
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    a1 = {k: v.copy() for k, v in base.items()}
    a2 = {k: v.copy() for k, v in base.items()}
    compile_nests(nests, prob.bindings(N))(a1)
    interpret_nests(nests, a2, prob.bindings(N))
    np.testing.assert_allclose(a1["u_1_b"], a2["u_1_b"], rtol=1e-12, atol=1e-14)


def test_interpreter_respects_statement_order():
    """'=' overwrites execute in order: last statement wins pointwise."""
    from repro.core import LoopNest, Statement

    nest = LoopNest(
        statements=(
            Statement(lhs=r(i), rhs=u(i) * 0 + 1.0, op="="),
            Statement(lhs=r(i), rhs=u(i) * 0 + 2.0, op="="),
        ),
        counters=(i,),
        bounds={i: (0, n)},
    )
    arrays = {"u": np.zeros(5), "r": np.zeros(5)}
    interpret_nests([nest], arrays, Bindings(sizes={n: 4}))
    np.testing.assert_allclose(arrays["r"], 2.0)


def test_interpreter_guard(rng):
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i), counters=[i], bounds={i: [0, n]}
    )
    guarded = nest.statements[0].with_guard(sp.And(sp.Ge(i, 2), sp.Le(i, 3)))
    from repro.core import LoopNest

    gnest = LoopNest(statements=(guarded,), counters=(i,), bounds={i: (0, n)})
    uv = rng.standard_normal(7)
    arrays = {"u": uv, "r": np.zeros(7)}
    interpret_nests([gnest], arrays, Bindings(sizes={n: 6}))
    assert arrays["r"][0] == 0 and arrays["r"][4] == 0
    np.testing.assert_allclose(arrays["r"][2:4], uv[2:4])


def test_interpreter_empty_region():
    nest = make_loop_nest(lhs=r(i), rhs=u(i), counters=[i], bounds={i: [4, n]})
    arrays = {"u": np.ones(5), "r": np.zeros(5)}
    interpret_nests([nest], arrays, Bindings(sizes={n: 2}))
    assert not arrays["r"].any()


def test_interpreter_minmax_heaviside(rng):
    """Scalar Max/Min/Heaviside fallbacks follow the paper's H(0)=1."""
    nest = make_loop_nest(
        lhs=r(i), rhs=sp.Heaviside(u(i)) + sp.Max(u(i), 0), counters=[i],
        bounds={i: [0, n]},
    )
    arrays = {"u": np.array([-1.0, 0.0, 2.0]), "r": np.zeros(3)}
    interpret_nests([nest], arrays, Bindings(sizes={n: 2}))
    np.testing.assert_allclose(arrays["r"], [0.0, 1.0, 3.0])
