"""Tests for the per-region kernel profiler."""

import pytest

from repro.apps import heat_problem, wave_problem
from repro.core import adjoint_loops
from repro.runtime import compile_nests, profile_kernel


def make(prob, n):
    kernel = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(n),
        name=prob.name + "_b",
    )
    arrays = prob.allocate(n)
    arrays.update(prob.allocate_adjoints(n))
    return kernel, arrays


def test_profile_covers_all_regions():
    prob = heat_problem(2)
    kernel, arrays = make(prob, 32)
    prof = profile_kernel(kernel, arrays)
    assert len(prof.regions) == len(kernel.regions) == 17
    assert prof.total_iterations == kernel.total_iterations()
    assert all(r.seconds >= 0 for r in prof.regions)


def test_core_dominates_large_grid():
    """Section 3.2: remainder time is insignificant for large grids."""
    prob = heat_problem(2)
    kernel, arrays = make(prob, 512)
    prof = profile_kernel(kernel, arrays, repeats=3)
    assert prof.core_fraction() > 0.5
    core = max(prof.regions, key=lambda r: r.iterations)
    assert core.iterations > 0.98 * prof.total_iterations


def test_report_format():
    prob = wave_problem(1)
    kernel, arrays = make(prob, 64)
    prof = profile_kernel(kernel, arrays)
    text = prof.report()
    assert "wave1d_b" in text and "ns/it" in text
    assert text.count("\n") == len(prof.regions)


def test_repeats_validation():
    prob = heat_problem(1)
    kernel, arrays = make(prob, 16)
    with pytest.raises(ValueError):
        profile_kernel(kernel, arrays, repeats=0)


def test_ns_per_iteration_positive():
    prob = heat_problem(1)
    kernel, arrays = make(prob, 64)
    prof = profile_kernel(kernel, arrays)
    core = max(prof.regions, key=lambda r: r.iterations)
    assert core.ns_per_iteration > 0


def test_repeats_time_identical_values_and_leave_one_application():
    """Arrays are restored between repeats (each repeat times the same
    values) and end up as after exactly one kernel application — the
    old profiler accumulated '+=' statements across repeats, so later
    repeats timed different data and the final state depended on
    ``repeats``."""
    import numpy as np

    prob = heat_problem(2)
    kernel, arrays = make(prob, 24)
    expected = {k: v.copy() for k, v in arrays.items()}
    for region in kernel.regions:
        region.execute(expected)

    profiled3 = {k: v.copy() for k, v in arrays.items()}
    profile_kernel(kernel, profiled3, repeats=3)
    profiled1 = {k: v.copy() for k, v in arrays.items()}
    profile_kernel(kernel, profiled1, repeats=1)
    for name in expected:
        np.testing.assert_array_equal(expected[name], profiled3[name])
        np.testing.assert_array_equal(expected[name], profiled1[name])


def test_profile_empty_region_reports_zero():
    import numpy as np
    import sympy as sp

    from repro.core import make_loop_nest
    from repro.runtime import Bindings

    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = make_loop_nest(lhs=r(i), rhs=u(i), counters=[i], bounds={i: [5, n]})
    kernel = compile_nests([nest], Bindings(sizes={n: 3}), cache=False)
    arrays = {"u": np.ones(10), "r": np.zeros(10)}
    prof = profile_kernel(kernel, arrays)
    assert len(prof.regions) == 1
    assert prof.regions[0].iterations == 0
    assert prof.regions[0].seconds == 0.0
