"""Tests for the per-region kernel profiler."""

import pytest

from repro.apps import heat_problem, wave_problem
from repro.core import adjoint_loops
from repro.runtime import compile_nests, profile_kernel


def make(prob, n):
    kernel = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(n),
        name=prob.name + "_b",
    )
    arrays = prob.allocate(n)
    arrays.update(prob.allocate_adjoints(n))
    return kernel, arrays


def test_profile_covers_all_regions():
    prob = heat_problem(2)
    kernel, arrays = make(prob, 32)
    prof = profile_kernel(kernel, arrays)
    assert len(prof.regions) == len(kernel.regions) == 17
    assert prof.total_iterations == kernel.total_iterations()
    assert all(r.seconds >= 0 for r in prof.regions)


def test_core_dominates_large_grid():
    """Section 3.2: remainder time is insignificant for large grids."""
    prob = heat_problem(2)
    kernel, arrays = make(prob, 512)
    prof = profile_kernel(kernel, arrays, repeats=3)
    assert prof.core_fraction() > 0.5
    core = max(prof.regions, key=lambda r: r.iterations)
    assert core.iterations > 0.98 * prof.total_iterations


def test_report_format():
    prob = wave_problem(1)
    kernel, arrays = make(prob, 64)
    prof = profile_kernel(kernel, arrays)
    text = prof.report()
    assert "wave1d_b" in text and "ns/it" in text
    assert text.count("\n") == len(prof.regions)


def test_repeats_validation():
    prob = heat_problem(1)
    kernel, arrays = make(prob, 16)
    with pytest.raises(ValueError):
        profile_kernel(kernel, arrays, repeats=0)


def test_ns_per_iteration_positive():
    prob = heat_problem(1)
    kernel, arrays = make(prob, 64)
    prof = profile_kernel(kernel, arrays)
    core = max(prof.regions, key=lambda r: r.iterations)
    assert core.ns_per_iteration > 0
