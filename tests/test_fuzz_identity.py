"""Seeded random-kernel fuzzing: one semantics across every execution path.

The runtime's layered execution paths — per-call unbound plans, bound
slot-tape replay, the JIT-built C backend (per-statement and with the
dependence-aware fusion pass), batched ensembles — all claim
*bitwise* identity with the plain serial path by construction.  The
hand-written suites assert that for the application kernels; this fuzz
suite asserts it for ~50 structurally random stencil kernels (random
coefficients, access shifts, guards, dimensionality, operators, dtypes),
which exercises corners no curated kernel hits: guard boxes meeting
statement bounds at odd offsets, mixed ``=``/``+=`` statement chains,
nonlinear terms, bare-counter operands, reduced-precision sweeps.

On failure the offending kernel is *shrunk* — statements, rhs terms and
guards are removed while the mismatch persists — and the minimal
kernel's source is printed, so a fuzz regression is immediately
reproducible and readable.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest
import sympy as sp

from repro.core.loopnest import LoopNest, Statement
from repro.core.validate import StencilRestrictionError, validate_loop_nest
from repro.runtime import Bindings, compile_nests, native_available
from repro.runtime.ensemble import EnsemblePlan, stack_arrays

N = 9  # grid size: arrays are (N+1,)**dim
RUNS = 3  # kernel applications per path (exercises tape replay)
KERNELS = 50

_n = sp.Symbol("n", integer=True)
_counters = sp.symbols("i j", integer=True)


# -- random kernel generation ----------------------------------------------------


def _random_nest(rng: np.random.Generator) -> tuple[LoopNest, np.dtype]:
    """One random valid stencil nest plus a random dtype."""
    dim = int(rng.integers(1, 3))
    counters = _counters[:dim]
    dtype = np.dtype(np.float64 if rng.random() < 0.5 else np.float32)
    inputs = ["u", "v"][: int(rng.integers(1, 3))]
    funcs = {name: sp.Function(name) for name in inputs}

    def access():
        name = inputs[int(rng.integers(len(inputs)))]
        offs = rng.integers(-1, 2, size=dim)
        return funcs[name](*[c + int(o) for c, o in zip(counters, offs)])

    def term():
        coeff = sp.Float(round(float(rng.standard_normal()), 6))
        expr = coeff * access()
        r = rng.random()
        if r < 0.12:
            expr = expr * access()  # nonlinear product
        elif r < 0.20:
            expr = expr * counters[int(rng.integers(dim))]  # bare counter
        elif r < 0.28:
            expr = sp.Max(expr, sp.Float(0.0))
        elif r < 0.34:
            expr = expr * access() ** 2
        elif r < 0.40:
            expr = sp.sin(expr)
        return expr

    def guard():
        if rng.random() >= 0.35:
            return None
        c = counters[int(rng.integers(dim))]
        kind = rng.integers(4)
        if kind == 0:
            return sp.Gt(c, 2)
        if kind == 1:
            return sp.Ge(c, 3)
        if kind == 2:
            return sp.Lt(c, _n - 3)
        return sp.Ge(_n - 4, c)  # mirrored form: a >= i

    def statement(target_name: str, op: str) -> Statement:
        rhs = sp.Add(*[term() for _ in range(int(rng.integers(1, 4)))])
        return Statement(
            lhs=sp.Function(target_name)(*counters),
            rhs=rhs,
            op=op,
            guard=guard(),
        )

    statements = [statement("r", "=" if rng.random() < 0.5 else "+=")]
    extra = rng.random()
    if extra < 0.25:
        statements.append(statement("r", "+="))  # same-target chain
    elif extra < 0.5:
        statements.append(statement("w", "=" if rng.random() < 0.5 else "+="))
    nest = LoopNest(
        statements=tuple(statements),
        counters=counters,
        bounds={c: (1, _n - 2) for c in counters},
        name="fuzz",
    )
    validate_loop_nest(nest)
    return nest, dtype


def _base_arrays(nest: LoopNest, dtype: np.dtype) -> dict[str, np.ndarray]:
    shape = (N + 1,) * nest.dim
    # crc32, not hash(): str hashing is PYTHONHASHSEED-randomised, and
    # a failing kernel must reproduce with the same input data anywhere.
    rng = np.random.default_rng(zlib.crc32(str(nest).encode()))
    return {
        name: (rng.standard_normal(shape) * 0.5).astype(dtype)
        for name in (*nest.read_arrays(), *nest.written_arrays())
    }


# -- the identity oracle ---------------------------------------------------------


def _mismatch(nest: LoopNest, dtype: np.dtype) -> str | None:
    """Run the nest through every path; a message naming the first
    diverging path, or None when all paths agree bitwise."""
    try:
        kernel = compile_nests(
            [nest], Bindings(sizes={_n: N}, params={}, dtype=dtype),
            name="fuzz", cache=False,
        )
    except Exception as exc:  # compile rejection is not an identity bug
        raise pytest.skip.Exception(f"kernel rejected: {exc}") from exc
    base = _base_arrays(nest, dtype)
    plan = kernel.plan()

    ref = {k: v.copy() for k, v in base.items()}
    for _ in range(RUNS):
        plan.run_unbound(ref)

    def check(label: str, final: dict[str, np.ndarray]) -> str | None:
        for name in ref:
            if ref[name].tobytes() != final[name].tobytes():
                return f"{label} diverged on {name!r} ({dtype})"
        return None

    bound_arrays = {k: v.copy() for k, v in base.items()}
    bound = plan.bind(bound_arrays)
    for _ in range(RUNS):
        bound.run()
    fail = check("bound plan", bound_arrays)
    if fail:
        return fail

    if native_available():
        native_arrays = {k: v.copy() for k, v in base.items()}
        nplan = kernel.plan(backend="native", fusion="off")
        nbound = nplan.bind(native_arrays)
        for _ in range(RUNS):
            nbound.run()
        fail = check(
            f"native backend ({nbound.native_statement_count}/"
            f"{nbound.statement_count} native)",
            native_arrays,
        )
        if fail:
            return fail

        fused_arrays = {k: v.copy() for k, v in base.items()}
        fplan = kernel.plan(backend="native", fusion="auto")
        fbound = fplan.bind(fused_arrays)
        for _ in range(RUNS):
            fbound.run()
        fail = check(
            f"fused native backend ({fbound.fused_group_count} groups "
            f"covering {fbound.fused_statement_count}/"
            f"{fbound.statement_count} statements)",
            fused_arrays,
        )
        if fail:
            return fail

        # Threaded native: bitwise at every thread count, by construction
        # (injective writes partition race-free).  Thread count goes in
        # the label so a shrunk reproducer pins the failing width.
        for nthreads in (2, 4):
            mt_arrays = {k: v.copy() for k, v in base.items()}
            mtplan = kernel.plan(backend="native", native_threads=nthreads)
            mtbound = mtplan.bind(mt_arrays)
            for _ in range(RUNS):
                mtbound.run()
            fail = check(
                f"threaded native backend (native_threads={nthreads}, "
                f"effective {mtbound.native_threads})",
                mt_arrays,
            )
            if fail:
                return fail

    batched = stack_arrays([{k: v.copy() for k, v in base.items()}])
    ensemble = EnsemblePlan(plan, batched)
    for _ in range(RUNS):
        ensemble.run()
    fail = check(
        "ensemble-of-1", {name: batched[name][0] for name in ref}
    )
    if fail:
        return fail
    return None


# -- shrinking -------------------------------------------------------------------


def _variants(nest: LoopNest):
    """Strictly smaller candidate nests, most aggressive first."""
    stmts = nest.statements
    if len(stmts) > 1:
        for drop in range(len(stmts)):
            kept = tuple(s for k, s in enumerate(stmts) if k != drop)
            yield LoopNest(kept, nest.counters, nest.bounds, name=nest.name)
    for si, st in enumerate(stmts):
        if st.guard is not None:
            new = list(stmts)
            new[si] = st.with_guard(None)
            yield LoopNest(tuple(new), nest.counters, nest.bounds, name=nest.name)
        if isinstance(st.rhs, sp.Add) and len(st.rhs.args) > 1:
            for drop in range(len(st.rhs.args)):
                rhs = sp.Add(
                    *[a for k, a in enumerate(st.rhs.args) if k != drop]
                )
                new = list(stmts)
                new[si] = Statement(lhs=st.lhs, rhs=rhs, op=st.op, guard=st.guard)
                yield LoopNest(
                    tuple(new), nest.counters, nest.bounds, name=nest.name
                )


def _shrink(nest: LoopNest, dtype: np.dtype, fail: str) -> tuple[LoopNest, str]:
    """Greedily minimise a failing nest while the mismatch persists."""
    for _ in range(64):  # bounded: each accepted step strictly shrinks
        for candidate in _variants(nest):
            try:
                validate_loop_nest(candidate)
                smaller_fail = _mismatch(candidate, dtype)
            except (StencilRestrictionError, pytest.skip.Exception):
                continue
            if smaller_fail is not None:
                nest, fail = candidate, smaller_fail
                break
        else:
            return nest, fail
    return nest, fail


@pytest.mark.parametrize("seed", range(KERNELS))
def test_random_kernel_paths_agree_bitwise(seed):
    rng = np.random.default_rng(0xF022 + seed)
    nest, dtype = _random_nest(rng)
    fail = _mismatch(nest, dtype)
    if fail is not None:
        nest, fail = _shrink(nest, dtype, fail)
        pytest.fail(
            f"{fail}\nminimal failing kernel (seed {seed}, {dtype}):\n{nest}"
        )
