"""Threaded native execution: determinism by construction, at every width.

The contract under test is the PR's hard requirement: a threaded native
run is **bitwise identical** to the serial native run (and therefore to
the Python seed path) at every thread count.  The suite drives the
acceptance matrix — heat/wave/burgers/anisotropic, f64/f32, bound /
fused / ensemble / checkpointed-adjoint — at 1, 2 and 4 threads, and
pins the operational story around it: the thread-count knob precedence
(explicit config beats ``REPRO_NATIVE_THREADS`` beats serial), the
bind-time gates that force ineligible configurations serial, the
one-rung-at-a-time fallback ladder when OpenMP is unavailable, and the
content-addressed cache keeping one ``.so`` per threading mode.

Why the identity holds (and why these are *assertions*, not
tolerances): every natively eligible statement writes through an
injective iteration→element map — the target's subscripts cover each
frame axis exactly once — so partitioning the outermost loop into
contiguous thread blocks partitions the *writes*.  Each element's value
is computed by exactly one thread, with the same scalar arithmetic
sequence as the serial loop.  No reduction, no scratch, no merge —
nothing whose order could perturb a single bit.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.apps import (
    anisotropic_problem,
    burgers_problem,
    heat_problem,
    wave_problem,
)
from repro.codegen.native_c import (
    generate_fused_source,
    generate_native_source,
    parallel_eligibility,
)
from repro.core import adjoint_loops
from repro.core.fusion import parallel_safe_group
from repro.runtime import (
    ExecutionConfig,
    compile_nests,
    faults,
    native_available,
    native_thread_count,
    stack_arrays,
)
from repro.runtime import native as native_mod

needs_cc = pytest.mark.skipif(
    not native_available(), reason="no C toolchain on this machine"
)

PROBLEMS = [
    ("heat2d", lambda: heat_problem(2), 18),
    ("wave2d", lambda: wave_problem(2), 18),
    ("burgers1d", lambda: burgers_problem(1), 40),
    ("anisotropic", lambda: anisotropic_problem(), 16),
]
THREADS = [1, 2, 4]


def _case(factory, n, dtype=np.float64, seed=0, cache=True):
    prob = factory()
    nests = [prob.primal] + list(adjoint_loops(prob.primal, prob.adjoint_map))
    kernel = compile_nests(nests, prob.bindings(n, dtype=dtype), cache=cache)
    rng = np.random.default_rng(seed)
    base = prob.allocate(n, rng=rng, dtype=dtype)
    base.update(prob.allocate_adjoints(n, rng=rng, dtype=dtype))
    return prob, kernel, base


def _run(kernel, base, replays=2, **plan_kwargs):
    got = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(backend="native", **plan_kwargs)
    try:
        bound = plan.bind(got)
        for _ in range(replays):
            bound.run()
        return got, bound
    finally:
        plan.close()


def _assert_bitwise(ref, got, label):
    for name in ref:
        assert ref[name].tobytes() == got[name].tobytes(), (
            f"{label} diverged from serial native on {name!r}"
        )


# -- the acceptance matrix ----------------------------------------------------


@needs_cc
@pytest.mark.parametrize("dtype", [np.float64, np.float32], ids=["f64", "f32"])
@pytest.mark.parametrize("name,factory,n", PROBLEMS, ids=[p[0] for p in PROBLEMS])
def test_bound_bitwise_across_thread_counts(name, factory, n, dtype):
    """Bound plans: serial native == threaded native, bit for bit."""
    _, kernel, base = _case(factory, n, dtype=dtype)
    ref, _ = _run(kernel, base, fusion="off")
    for nthreads in THREADS[1:]:
        got, bound = _run(kernel, base, fusion="off", native_threads=nthreads)
        _assert_bitwise(ref, got, f"{name} native_threads={nthreads}")
        assert bound.native_threads == nthreads


@needs_cc
@pytest.mark.parametrize("name,factory,n", PROBLEMS, ids=[p[0] for p in PROBLEMS])
def test_fused_bitwise_across_thread_counts(name, factory, n):
    """Fused nests: the parallel variant matches the serial fused path."""
    _, kernel, base = _case(factory, n)
    ref, _ = _run(kernel, base, fusion="auto")
    for nthreads in THREADS[1:]:
        got, _ = _run(kernel, base, fusion="auto", native_threads=nthreads)
        _assert_bitwise(ref, got, f"{name} fused native_threads={nthreads}")


@needs_cc
@pytest.mark.parametrize("name,factory,n", PROBLEMS, ids=[p[0] for p in PROBLEMS])
def test_ensemble_bitwise_across_thread_counts(name, factory, n):
    """Ensembles inherit in-kernel threading; members stay bitwise exact."""
    prob, kernel, _ = _case(factory, n)
    states = [prob.allocate_state(n, seed=m) for m in range(2)]
    refs = []
    for st in states:
        ref = {k: v.copy() for k, v in st.items()}
        kernel(ref)
        refs.append(ref)
    for nthreads in (1, 2):
        ens = kernel.plan(backend="native", native_threads=nthreads).ensemble(
            stack_arrays(states)
        )
        with ens:
            ens.run()
            for m, ref in enumerate(refs):
                got = ens.member_arrays(m)
                _assert_bitwise(
                    ref, got, f"{name} ensemble member {m} at {nthreads} threads"
                )


@needs_cc
@pytest.mark.parametrize("nthreads", THREADS)
def test_checkpointed_adjoint_bitwise(nthreads):
    """Revolve-checkpointed adjoints: same gradients at every width."""
    prob = heat_problem(1)
    n = 32
    u0 = prob.allocate_state(n, seed=0)["u_1"]
    seed = prob.allocate_adjoints(n)["u_b"]
    with prob.checkpointed_adjoint(n, steps=6, snaps=2) as py_plan:
        ref = {k: v.copy() for k, v in py_plan.adjoint([u0], seed).items()}
    with prob.checkpointed_adjoint(
        n, steps=6, snaps=2, backend="native", native_threads=nthreads
    ) as plan:
        got = plan.adjoint([u0], seed)
    _assert_bitwise(ref, got, f"checkpointed adjoint at {nthreads} threads")


# -- knob precedence and bind-time gates --------------------------------------


def test_explicit_config_beats_environment(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_THREADS", "8")
    assert native_thread_count(ExecutionConfig(native_threads=2)) == 2
    assert native_thread_count(ExecutionConfig()) == 8


def test_environment_knob_defaults_and_invalid_values(monkeypatch):
    monkeypatch.delenv("REPRO_NATIVE_THREADS", raising=False)
    assert native_thread_count(ExecutionConfig()) == 1
    for bad in ("banana", "", "-3", "0"):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", bad)
        assert native_thread_count(ExecutionConfig()) == 1


@pytest.mark.parametrize(
    "config",
    [
        ExecutionConfig(num_threads=2, native_threads=4),
        ExecutionConfig(scatter=True, num_threads=2, native_threads=4),
        ExecutionConfig(check="nan", native_threads=4),
    ],
    ids=["threaded-statements", "scatter", "nan-watchdog"],
)
def test_ineligible_configs_gate_to_serial(config):
    """Statement-level threading, scatter and the watchdog force serial."""
    assert native_thread_count(config) == 1


def test_config_rejects_nonpositive_thread_counts():
    with pytest.raises(ValueError, match="native_threads"):
        ExecutionConfig(native_threads=0)
    ExecutionConfig(native_threads=None)  # the default: env decides


# -- the fallback ladder ------------------------------------------------------


@needs_cc
def test_no_openmp_falls_back_one_rung_to_serial_native():
    """A compiler without OpenMP keeps the *serial native* path (not
    python), warns exactly once, and stays bitwise-identical."""
    # cache=False: the library verdict is memoised on the kernel object,
    # so the probe must be hit by a kernel nothing has threaded yet; the
    # reference run pins width 1 explicitly so an ambient
    # REPRO_NATIVE_THREADS (the CI thread matrix) cannot pre-probe.
    _, kernel, base = _case(*PROBLEMS[0][1:], cache=False)
    ref, _ = _run(kernel, base, native_threads=1)
    native_mod._reset_warnings()
    native_mod._omp_flags_memo.clear()
    try:
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always", RuntimeWarning)
            with faults.inject("native.omp.probe"):
                got, bound = _run(kernel, base, native_threads=2)
                _assert_bitwise(ref, got, "omp-less threaded request")
                assert bound.native_threads == 1  # the effective width
                _run(kernel, base, native_threads=2)  # second request
        omp_warnings = [w for w in rec if "-fopenmp" in str(w.message)]
        assert len(omp_warnings) == 1  # warned once, not per bind
    finally:
        native_mod._omp_flags_memo.clear()
        native_mod._reset_warnings()


@needs_cc
def test_threaded_libraries_are_distinct_cache_entries():
    """One .so per threading mode: the build key covers the width."""
    _, kernel, base = _case(*PROBLEMS[0][1:])
    _run(kernel, base)  # serial verdict
    lib2 = native_mod.library_for_kernel(kernel, 2)
    lib4 = native_mod.library_for_kernel(kernel, 4)
    serial = native_mod.library_for_kernel(kernel)
    assert serial.nthreads == 1
    assert (lib2.nthreads, lib4.nthreads) == (2, 4)
    paths = {serial.so_path, lib2.so_path, lib4.so_path}
    assert len(paths) == 3, "threading modes must not share a cache entry"
    # The verdicts are memoised: repeated requests return the same object.
    assert native_mod.library_for_kernel(kernel, 2) is lib2


# -- generated source ---------------------------------------------------------


def _heat2d_kernel(n=12):
    prob = heat_problem(2)
    nests = [prob.primal] + list(adjoint_loops(prob.primal, prob.adjoint_map))
    return compile_nests(nests, prob.bindings(n))


def test_threaded_source_carries_pragmas_serial_does_not():
    kernel = _heat2d_kernel()
    serial_src, _ = generate_native_source(kernel)
    threaded_src, _ = generate_native_source(kernel, 4)
    assert "#pragma omp" not in serial_src
    assert "num_threads(4)" in threaded_src
    assert "schedule(static)" in threaded_src
    assert "/* threaded variant: 4 OpenMP threads */" in threaded_src
    # Stripping the threading artifacts recovers the serial source: the
    # loop bodies — the arithmetic — are untouched by the transform.
    stripped = [
        line
        for line in threaded_src.splitlines()
        if "#pragma omp" not in line and "threaded variant" not in line
    ]
    assert stripped == serial_src.splitlines()


def test_parallel_eligibility_rules():
    kernel = _heat2d_kernel()
    dim = len(kernel.counters)
    for region in kernel.regions:
        for stmt in region.statements:
            assert parallel_eligibility(stmt, dim) is None
    # Zero-dimensional statements have nothing to partition.
    stmt = kernel.regions[0].statements[0]
    assert "no axis" in parallel_eligibility(stmt, 0)


def _fused_groups(kernel, base):
    """(fused groups, name->array sources) from a real fusion bind."""
    arrays = {k: v.copy() for k, v in base.items()}
    plan = kernel.plan(backend="native", fusion="auto")
    try:
        bound = plan.bind(arrays)
        groups = [g for g in bound._fusion_groups if g.fused]
        return groups, dict(bound._sources)
    finally:
        plan.close()


@needs_cc
def test_fused_threaded_source_and_dim1_fallback():
    """dim>=2 fused nests get the pragma; dim-1 nests stay serial."""
    kernel2 = _heat2d_kernel()
    prob2 = heat_problem(2)
    base2 = prob2.allocate_state(12, seed=0)
    groups, sources = _fused_groups(kernel2, base2)
    assert groups, "heat2d adjoint should produce fusable groups"
    for group in groups:
        assert parallel_safe_group(group.entries) is None
    src2, _, _ = generate_fused_source(
        groups[0].entries, sources, kernel2.counters, 2
    )
    assert "num_threads(2)" in src2
    serial2, _, _ = generate_fused_source(
        groups[0].entries, sources, kernel2.counters
    )
    assert "#pragma omp" not in serial2

    prob1 = heat_problem(1)
    nests = [prob1.primal] + list(
        adjoint_loops(prob1.primal, prob1.adjoint_map)
    )
    kernel1 = compile_nests(nests, prob1.bindings(40))
    base1 = prob1.allocate_state(40, seed=0)
    groups1, sources1 = _fused_groups(kernel1, base1)
    for group in groups1:
        src, _, _ = generate_fused_source(
            group.entries, sources1, kernel1.counters, 4
        )
        assert "#pragma omp" not in src  # dim-1: no outer loop to split
