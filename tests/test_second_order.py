"""Tests for Hessian-vector products via tangent-over-adjoint."""

import numpy as np
import pytest
import sympy as sp

from repro.apps import burgers_problem, heat_problem, wave_problem
from repro.core import make_loop_nest
from repro.core.second_order import second_order_nests, tangent_map_for
from repro.verify.hvp import gradient, hessian_vector_product


def test_tangent_map_covers_primals_and_adjoints():
    prob = wave_problem(1)
    seeds = tangent_map_for(prob.adjoint_map)
    names = {f.__name__ for f in seeds.values()}
    assert {"u_d", "u_b_d", "u_1_d", "u_1_b_d"} <= names


def test_second_order_nest_count_matches_first_order():
    prob = burgers_problem(1)
    nests = second_order_nests(prob.primal, prob.adjoint_map)
    assert len(nests) == 5  # one tangent nest per adjoint nest


def test_linear_stencil_has_zero_hessian(rng):
    """The heat stencil is linear: H v must be identically zero."""
    prob = heat_problem(2)
    N = 12
    shape = prob.array_shape(N)
    inputs = prob.allocate(N, rng=rng)
    w = rng.standard_normal(shape)
    v = {"u_1": rng.standard_normal(shape)}
    hv = hessian_vector_product(prob, N, inputs, w, v)
    assert np.allclose(hv["u_1"], 0.0)


def test_quadratic_stencil_exact_hessian(rng):
    """r[i] = u[i-1]^2: H = diag(2 w shifted); checked exactly."""
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i - 1) ** 2, counters=[i], bounds={i: [1, n - 1]},
        op="+=",
    )
    amap = {r: sp.Function("r_b"), u: sp.Function("u_b")}
    from repro.runtime import Bindings, compile_nests

    N = 20
    shape = (N + 1,)
    bind = Bindings(sizes={n: N})
    nests = second_order_nests(nest, amap)
    uv = rng.standard_normal(shape)
    w = np.zeros(shape)
    w[1:N] = rng.standard_normal(N - 1)
    v = rng.standard_normal(shape)
    arrays = {
        "u": uv, "u_d": v, "r_b": w, "r_b_d": np.zeros(shape),
        "u_b": np.zeros(shape), "u_b_d": np.zeros(shape),
    }
    compile_nests(nests, bind)(arrays)
    # J = sum_i w_i u_{i-1}^2; dJ/du_j = 2 w_{j+1} u_j; H = diag(2 w_{j+1}).
    expected = np.zeros(shape)
    expected[0 : N - 1] = 2.0 * w[1:N] * v[0 : N - 1]
    np.testing.assert_allclose(arrays["u_b_d"], expected, rtol=1e-12, atol=1e-13)


def test_burgers_hvp_matches_fd_of_gradient(rng):
    """H v == (g(x + h v) - g(x - h v)) / 2h for the nonlinear Burgers body."""
    prob = burgers_problem(1)
    N = 48
    shape = prob.array_shape(N)
    inputs = prob.allocate(N, rng=rng)
    w = np.zeros(shape)
    w[1:N] = rng.standard_normal(N - 1)
    v = {"u_1": rng.standard_normal(shape)}
    hv = hessian_vector_product(prob, N, inputs, w, v)

    h = 1e-6
    up = dict(inputs); up["u_1"] = inputs["u_1"] + h * v["u_1"]
    um = dict(inputs); um["u_1"] = inputs["u_1"] - h * v["u_1"]
    gp = gradient(prob, N, up, w)["u_1"]
    gm = gradient(prob, N, um, w)["u_1"]
    fd = (gp - gm) / (2 * h)
    np.testing.assert_allclose(hv["u_1"], fd, rtol=1e-5, atol=1e-7)


def test_wave_bilinear_c_u_coupling(rng):
    """Wave with active c: J is bilinear in (c, u_1), so the HVP with a
    pure-c direction appears in the u_1 component and vice versa."""
    prob = wave_problem(2, active_c=True)
    N = 12
    shape = prob.array_shape(N)
    inputs = prob.allocate(N, rng=rng)
    w = np.zeros(shape)
    w[1:N, 1:N] = rng.standard_normal((N - 1, N - 1))
    vc = {"c": rng.standard_normal(shape)}
    hv = hessian_vector_product(prob, N, inputs, w, vc)
    # Mixed second derivative: direction in c shows up in u_1's component.
    assert np.abs(hv["u_1"]).max() > 0
    # Pure second derivative in c is zero (J linear in c alone).
    assert np.allclose(hv["c"], 0.0)

    # FD cross-check on the u_1 component.
    h = 1e-6
    up = dict(inputs); up["c"] = inputs["c"] + h * vc["c"]
    um = dict(inputs); um["c"] = inputs["c"] - h * vc["c"]
    fd = (gradient(prob, N, up, w)["u_1"] - gradient(prob, N, um, w)["u_1"]) / (2 * h)
    np.testing.assert_allclose(hv["u_1"], fd, rtol=1e-5, atol=1e-8)


def test_hvp_symmetry(rng):
    """<H v1, v2> == <H v2, v1> (Hessian symmetry) on the Burgers body."""
    prob = burgers_problem(1)
    N = 40
    shape = prob.array_shape(N)
    inputs = prob.allocate(N, rng=rng)
    w = np.zeros(shape)
    w[1:N] = rng.standard_normal(N - 1)
    v1 = rng.standard_normal(shape)
    v2 = rng.standard_normal(shape)
    hv1 = hessian_vector_product(prob, N, inputs, w, {"u_1": v1})["u_1"]
    hv2 = hessian_vector_product(prob, N, inputs, w, {"u_1": v2})["u_1"]
    lhs = float(np.vdot(hv1, v2))
    rhs = float(np.vdot(hv2, v1))
    assert abs(lhs - rhs) <= 1e-10 * max(1.0, abs(lhs))
