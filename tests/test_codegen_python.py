"""Python/NumPy back-end tests: generated source must compile and agree
with the directly compiled kernels."""

import numpy as np
import sympy as sp
import pytest

from repro.apps import burgers_problem, heat_problem, wave_problem
from repro.codegen import print_function_python
from repro.core import adjoint_loops
from repro.runtime import Bindings, compile_nests


def exec_generated(code: str, fname: str):
    ns: dict = {}
    exec(compile(code, f"<generated {fname}>", "exec"), ns)
    return ns[fname]


def test_generated_source_is_valid_python():
    prob = wave_problem(2)
    code = print_function_python("wave2d", [prob.primal])
    fn = exec_generated(code, "wave2d")
    assert callable(fn)


@pytest.mark.parametrize("factory,N", [
    (lambda: wave_problem(2), 14),
    (lambda: burgers_problem(1), 30),
    (lambda: heat_problem(2), 12),
])
def test_generated_primal_matches_compiled(factory, N):
    prob = factory()
    code = print_function_python("primal", [prob.primal])
    fn = exec_generated(code, "primal")
    rng = np.random.default_rng(3)
    a1 = prob.allocate(N, rng=rng)
    a2 = {k: v.copy() for k, v in a1.items()}
    fn(a1, n=N, **prob.param_defaults)
    compile_nests([prob.primal], prob.bindings(N))(a2)
    for k in a1:
        np.testing.assert_allclose(a1[k], a2[k], rtol=1e-12, atol=1e-14)


@pytest.mark.parametrize("strategy", ["disjoint", "guarded"])
def test_generated_adjoint_matches_compiled(strategy):
    prob = burgers_problem(1)
    N = 30
    nests = adjoint_loops(prob.primal, prob.adjoint_map, strategy=strategy)
    code = print_function_python("adj", nests)
    fn = exec_generated(code, "adj")
    rng = np.random.default_rng(4)
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    a1 = {k: v.copy() for k, v in base.items()}
    a2 = {k: v.copy() for k, v in base.items()}
    fn(a1, n=N, **prob.param_defaults)
    compile_nests(nests, prob.bindings(N))(a2)
    np.testing.assert_allclose(a1["u_1_b"], a2["u_1_b"], rtol=1e-12, atol=1e-14)


def test_empty_region_guard_in_source():
    """Generated code skips regions that are empty at runtime (small n)."""
    prob = heat_problem(1)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    code = print_function_python("adj", nests)
    fn = exec_generated(code, "adj")
    # n = 4: core region [2, n-3] = [2, 1] is empty; must not raise.
    N = 4
    arrays = prob.allocate(N)
    arrays.update(prob.allocate_adjoints(N))
    fn(arrays, n=N, **prob.param_defaults)


def test_heaviside_rendered_as_np_where():
    prob = burgers_problem(1)
    nests = adjoint_loops(prob.primal, prob.adjoint_map)
    code = print_function_python("adj", nests)
    assert "np.where(" in code
    assert "np.maximum(" in code and "np.minimum(" in code


def test_docstring_embedded():
    prob = heat_problem(1)
    code = print_function_python("f", [prob.primal], docstring="hello doc")
    assert "hello doc" in code
