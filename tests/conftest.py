"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import sympy as sp

from repro.apps import (
    advection_problem,
    anisotropic_problem,
    burgers_problem,
    conv_problem,
    heat_problem,
    wave_problem,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def symbols_1d():
    """(i, n, u, c, r, u_b, r_b) for the paper's Section 3.2 example."""
    i = sp.Symbol("i", integer=True)
    n = sp.Symbol("n", integer=True)
    u, c, r = sp.Function("u"), sp.Function("c"), sp.Function("r")
    u_b, r_b = sp.Function("u_b"), sp.Function("r_b")
    return i, n, u, c, r, u_b, r_b


@pytest.fixture
def example_1d(symbols_1d):
    """The 1-D three-point stencil of Section 3.2."""
    from repro.core import make_loop_nest

    i, n, u, c, r, u_b, r_b = symbols_1d
    expr = c(i) * (2.0 * u(i - 1) - 3.0 * u(i) + 4 * u(i + 1))
    nest = make_loop_nest(
        lhs=r(i), rhs=expr, counters=[i], bounds={i: [1, n - 1]}, name="sec32"
    )
    return nest, {r: r_b, u: u_b}


ALL_PROBLEMS = [
    ("wave1d", lambda: wave_problem(1), 40),
    ("wave2d", lambda: wave_problem(2), 18),
    ("wave3d", lambda: wave_problem(3), 12),
    ("burgers1d", lambda: burgers_problem(1), 40),
    ("burgers2d", lambda: burgers_problem(2), 16),
    ("heat1d", lambda: heat_problem(1), 40),
    ("heat2d", lambda: heat_problem(2), 18),
    ("heat3d", lambda: heat_problem(3), 10),
    ("conv3x3", lambda: conv_problem(3), 18),
    ("conv5x5", lambda: conv_problem(5), 20),
    ("advection1", lambda: advection_problem(1), 40),
    ("advection2", lambda: advection_problem(2), 40),
    ("anisotropic", lambda: anisotropic_problem(), 16),
    ("anisotropic_k", lambda: anisotropic_problem(active_k=True), 14),
]


@pytest.fixture(params=ALL_PROBLEMS, ids=[p[0] for p in ALL_PROBLEMS])
def any_problem(request):
    """(problem, test grid size) for every application test case."""
    _, factory, n = request.param
    return factory(), n
