"""Tests for the textual stencil front-end (lexer + parser + unparser).

The front-end is an *untrusted input* path (it feeds the serving
daemon, ``docs/serving.md``), so beyond the positive grammar tests two
properties are pinned here:

* every malformed spec — truncated expressions, bad subscripts,
  over-limit nesting, unicode garbage, NUL bytes, empty input — raises
  a typed :class:`~repro.errors.ValidationError` carrying a source
  position, never a bare ``SyntaxError`` or an interpreter crash;
* printing is the parser's inverse: random fuzz-suite kernels survive
  print -> parse -> print as a fixed point, and the reparsed kernel
  executes bitwise-identically to the original.
"""

import re

import numpy as np
import sympy as sp
import pytest

from repro.apps import burgers_problem, wave_problem
from repro.core import StencilRestrictionError, adjoint_loops
from repro.core.loopnest import LoopNest
from repro.core.validate import SpecLimits
from repro.errors import ValidationError
from repro.frontend import (
    LexError,
    ParseError,
    parse_stencil,
    parse_stencils,
    to_source,
    tokenize,
)
from repro.runtime import Bindings, compile_nests

WAVE3D_SRC = """
# 3-D wave equation, Figure 4 of the paper, in the textual front-end.
stencil wave3d {
  iterate i = 1 .. n-2, j = 1 .. n-2, k = 1 .. n-2
  u[i,j,k] += 2.0*u_1[i,j,k] - u_2[i,j,k]
              + c[i,j,k]*D*(u_1[i-1,j,k] + u_1[i+1,j,k]
                          + u_1[i,j-1,k] + u_1[i,j+1,k]
                          + u_1[i,j,k-1] + u_1[i,j,k+1]
                          - 6*u_1[i,j,k])
}
"""

BURGERS_SRC = """
stencil burgers1d {
  iterate i = 1 .. n-2
  u[i] += u_1[i]
          - C*(max(u_1[i], 0)*(u_1[i] - u_1[i-1])
             + min(u_1[i], 0)*(u_1[i+1] - u_1[i]))
          + D*(u_1[i+1] + u_1[i-1] - 2.0*u_1[i])
}
"""


# -- lexer ---------------------------------------------------------------


def test_tokenize_basics():
    toks = tokenize("a[i+1] += 2.5*b")
    kinds = [t.kind for t in toks]
    assert kinds == ["ident", "op", "ident", "op", "number", "op", "op",
                     "number", "op", "ident", "end"]


def test_tokenize_range_not_float():
    toks = tokenize("1 .. n")
    assert [t.text for t in toks[:3]] == ["1", "..", "n"]
    toks2 = tokenize("1..n")
    assert [t.text for t in toks2[:3]] == ["1", "..", "n"]


def test_tokenize_comments_and_positions():
    toks = tokenize("a # comment\nb")
    assert [t.text for t in toks[:2]] == ["a", "b"]
    assert toks[1].line == 2


def test_tokenize_rejects_garbage():
    with pytest.raises(LexError):
        tokenize("a ? b")


def test_float_literal():
    toks = tokenize("2.75")
    assert toks[0].kind == "number" and toks[0].text == "2.75"


# -- parser ---------------------------------------------------------------


def test_parse_wave3d_equivalent_to_programmatic():
    nest = parse_stencil(WAVE3D_SRC)
    ref = wave_problem(3).primal
    assert nest.name == "wave3d"
    assert len(nest.counters) == 3
    # Semantically identical statement.
    st, ref_st = nest.statements[0], ref.statements[0]
    # Rename the parser's symbols onto the reference's before comparing.
    ren = {s: sp.Symbol(s.name, integer=True) for s in nest.counters}
    ren.update({sp.Symbol("D", real=True): sp.Symbol("D", real=True)})
    diff = sp.expand(st.rhs.subs(ren) - ref_st.rhs)
    # D symbols differ only in assumptions; normalise by string round trip.
    assert sp.simplify(sp.sympify(str(st.rhs)) - sp.sympify(str(ref_st.rhs))) == 0
    assert st.op == ref_st.op == "+="


def test_parsed_wave_differentiates_to_53_nests():
    nest = parse_stencil(WAVE3D_SRC)
    u = sp.Function("u"); u_1 = sp.Function("u_1"); u_2 = sp.Function("u_2")
    amap = {u: sp.Function("u_b"), u_1: sp.Function("u_1_b"),
            u_2: sp.Function("u_2_b")}
    assert len(adjoint_loops(nest, amap)) == 53


def test_parsed_burgers_executes_like_reference(rng):
    nest = parse_stencil(BURGERS_SRC)
    ref = burgers_problem(1)
    N = 40
    n = sp.Symbol("n")
    bind = Bindings(sizes={n: N}, params={"C": 0.2, "D": 0.1})
    a1 = ref.allocate(N, rng=rng)
    a2 = {k: v.copy() for k, v in a1.items()}
    compile_nests([nest], bind)(a1)
    compile_nests([ref.primal], ref.bindings(N))(a2)
    np.testing.assert_allclose(a1["u"], a2["u"], rtol=1e-12, atol=1e-14)


def test_parse_multiple_stencils():
    src = """
    stencil a { iterate i = 1 .. n-1  r[i] = u[i-1] }
    stencil b { iterate i = 1 .. n-1  s[i] = u[i+1] }
    """
    nests = parse_stencils(src)
    assert [x.name for x in nests] == ["a", "b"]


def test_parse_multi_statement_stencil():
    src = """
    stencil two {
      iterate i = 1 .. n-1
      r[i] += u[i-1]
      s[i] += u[i+1]
    }
    """
    nest = parse_stencils(src)[0]
    assert len(nest.statements) == 2


def test_power_operator():
    nest = parse_stencil("stencil p { iterate i = 1 .. n-1  r[i] = u[i]^2 }")
    u = sp.Function("u")
    assert nest.statements[0].rhs.atoms(sp.Pow)


def test_unary_minus_and_parens():
    nest = parse_stencil("stencil p { iterate i = 1 .. n-1  r[i] = -(u[i-1] - u[i+1])/2 }")
    assert nest.statements[0].rhs != 0


def test_parse_error_missing_bracket():
    with pytest.raises(ParseError):
        parse_stencil("stencil p { iterate i = 1 .. n-1  r[i = u[i] }")


def test_parse_error_bare_statement():
    with pytest.raises(ParseError):
        parse_stencil("stencil p { iterate i = 1 .. n-1  x = u[i] }")


def test_parse_error_empty_body():
    with pytest.raises(ParseError):
        parse_stencil("stencil p { iterate i = 1 .. n-1 }")


def test_parse_error_no_stencil():
    with pytest.raises(ParseError):
        parse_stencils("   # nothing here\n")


def test_parse_error_scalar_reused_as_counter():
    # C is used as a scalar in the first range, then declared as a counter.
    with pytest.raises(ParseError):
        parse_stencil("stencil p { iterate i = C .. n-1, C = 1 .. 5  r[i,C] = 0 }")


def test_parse_error_array_in_index():
    with pytest.raises(ParseError):
        parse_stencil("stencil p { iterate i = 1 .. n-1  r[u[i]] = 1 }")


def test_restrictions_apply_to_parsed_stencils():
    """Section 3.4 checks run on front-end input too."""
    with pytest.raises(StencilRestrictionError):
        parse_stencil("stencil p { iterate i = 1 .. n-1  u[i] = u[i-1] }")


def test_parsed_adjoint_matches_programmatic_adjoint(rng):
    """End to end: parse -> diff -> compile -> execute == programmatic."""
    nest = parse_stencil(BURGERS_SRC)
    ref = burgers_problem(1)
    N = 36
    u = sp.Function("u"); u_1 = sp.Function("u_1")
    amap = {u: sp.Function("u_b"), u_1: sp.Function("u_1_b")}
    n = sp.Symbol("n")
    bind = Bindings(sizes={n: N}, params={"C": 0.2, "D": 0.1})
    base = ref.allocate(N, rng=rng)
    base.update(ref.allocate_adjoints(N, rng=rng))
    a1 = {k: v.copy() for k, v in base.items()}
    a2 = {k: v.copy() for k, v in base.items()}
    compile_nests(adjoint_loops(nest, amap), bind)(a1)
    compile_nests(adjoint_loops(ref.primal, ref.adjoint_map), ref.bindings(N))(a2)
    np.testing.assert_allclose(a1["u_1_b"], a2["u_1_b"], rtol=1e-12, atol=1e-14)


# -- malformed-spec matrix: typed errors with positions, never crashes ----


MALFORMED = [
    pytest.param(
        "stencil p { iterate i = 1 .. n-2\n  u[i] +=\n}\n",
        id="unterminated-expression",
    ),
    pytest.param(
        "stencil p { iterate i = 1 .. n-2\n  u[i] = 1 +\n}\n",
        id="dangling-binary-operator",
    ),
    pytest.param(
        "stencil p { iterate i = 1 .. n-2\n  u[i] = (v[i]\n}\n",
        id="unclosed-paren",
    ),
    pytest.param(
        "stencil p { iterate i = 1 .. n-2\n  u[i] = v[i\n}\n",
        id="unclosed-subscript",
    ),
    pytest.param(
        "stencil p { iterate i = 1 .. n-2\n  u[i] = v[w[i]]\n}\n",
        id="array-valued-subscript",
    ),
    pytest.param(
        "stencil p { iterate i = 1 .. n-2\n  u[] = 1\n}\n",
        id="empty-subscript",
    ),
    pytest.param(
        "stencil p { iterate i = 1 .. n-2\n  u[i] = v[i]",
        id="unterminated-body",
    ),
    pytest.param(
        "stencil p { iterate i = 1 .. n-2\n  u[i] = "
        + "(" * 150 + "v[i]" + ")" * 150 + "\n}\n",
        id="over-limit-expression-nesting",
    ),
    pytest.param(
        "stencil p { iterate i = 1 .. n-2\n  u[i] = v[i] ☠ 1\n}\n",
        id="unicode-garbage",
    ),
    pytest.param(
        "stencil p {\x00 iterate i = 1 .. n-2\n  u[i] = v[i]\n}\n",
        id="nul-byte",
    ),
    pytest.param("", id="empty-input"),
    pytest.param("   # nothing but a comment\n", id="comment-only-input"),
    pytest.param("stencil p { }", id="missing-iterate"),
    pytest.param(
        "stencil p { iterate i = 1 ..\n  u[i] = v[i]\n}\n",
        id="unterminated-range",
    ),
]


@pytest.mark.parametrize("src", MALFORMED)
def test_malformed_spec_is_typed_error_with_position(src):
    with pytest.raises(ValidationError) as err:
        parse_stencil(src)
    # Typed, never the interpreter's own SyntaxError family.
    assert not isinstance(err.value, SyntaxError)
    # Every grammar/lex failure names where in the source it happened.
    assert re.search(r"line \d+", str(err.value)), str(err.value)


def test_source_size_cap_is_typed():
    limits = SpecLimits(max_source_bytes=64)
    src = "stencil p { iterate i = 1 .. n-2\n  u[i] = " \
        + " + ".join(["v[i]"] * 32) + "\n}\n"
    with pytest.raises(ValidationError, match="bytes"):
        parse_stencil(src, limits=limits)


def test_custom_limits_cap_counters_and_statements():
    two_dim = "stencil p { iterate i = 1 .. n-2, j = 1 .. n-2\n  u[i,j] = v[i,j]\n}\n"
    with pytest.raises(ValidationError, match="counters"):
        parse_stencil(two_dim, limits=SpecLimits(max_counters=1))
    two_stmts = (
        "stencil p { iterate i = 1 .. n-2\n"
        "  u[i] = v[i]\n  w[i] = v[i]\n}\n"
    )
    with pytest.raises(ValidationError, match="statements"):
        parse_stencil(two_stmts, limits=SpecLimits(max_statements=1))
    # Distinct offsets so sympy cannot collapse the sum to one node.
    big_rhs = "stencil p { iterate i = 1 .. n-2\n  u[i] = " \
        + " + ".join(f"v[i+{k}]" for k in range(16)) + "\n}\n"
    with pytest.raises(ValidationError, match="nodes"):
        parse_stencil(big_rhs, limits=SpecLimits(max_expr_nodes=8))


def test_lex_error_carries_line_and_column():
    with pytest.raises(LexError) as err:
        tokenize("a\nb ? c")
    assert err.value.line == 2 and err.value.col == 3


# -- print -> parse -> print: the unparser is the parser's inverse --------


def _sin_free_fuzz_nest(seed: int) -> LoopNest:
    """A guard-free fuzz kernel; sin() is not in the front-end grammar,
    so nests containing it are deterministically regenerated."""
    from test_fuzz_identity import _random_nest

    for attempt in range(64):
        rng = np.random.default_rng(0xD51 + 1009 * seed + attempt)
        nest, _ = _random_nest(rng)
        bare = LoopNest(
            statements=tuple(st.with_guard(None) for st in nest.statements),
            counters=nest.counters,
            bounds=nest.bounds,
            name="fuzz",
        )
        if not any(st.rhs.has(sp.sin) for st in bare.statements):
            return bare
    raise AssertionError("no sin-free fuzz kernel in 64 attempts")


@pytest.mark.parametrize("seed", range(20))
def test_fuzz_kernel_print_parse_print_fixed_point(seed):
    nest = _sin_free_fuzz_nest(seed)
    src = to_source(nest)
    reparsed = parse_stencil(src)
    assert to_source(reparsed) == src
    assert reparsed.name == nest.name
    assert len(reparsed.statements) == len(nest.statements)
    assert [st.op for st in reparsed.statements] == [
        st.op for st in nest.statements
    ]
    assert [str(c) for c in reparsed.counters] == [
        str(c) for c in nest.counters
    ]


@pytest.mark.parametrize("seed", range(0, 20, 4))
def test_fuzz_kernel_reparse_executes_bitwise_identically(seed):
    from test_fuzz_identity import _base_arrays

    nest = _sin_free_fuzz_nest(seed)
    reparsed = parse_stencil(to_source(nest))
    grid = 9
    base = _base_arrays(nest, np.dtype(np.float64))
    results = []
    for candidate in (nest, reparsed):
        kernel = compile_nests(
            [candidate],
            Bindings(sizes={"n": grid}, params={}),
            name="roundtrip",
            cache=False,
        )
        arrays = {k: v.copy() for k, v in base.items()}
        kernel(arrays)
        results.append(arrays)
    for name in results[0]:
        assert results[0][name].tobytes() == results[1][name].tobytes(), name


def test_guarded_statements_refuse_to_unparse():
    nest = parse_stencil("stencil p { iterate i = 1 .. n-2\n  u[i] = v[i]\n}\n")
    guarded = LoopNest(
        statements=tuple(
            st.with_guard(sp.Gt(nest.counters[0], 2))
            for st in nest.statements
        ),
        counters=nest.counters,
        bounds=nest.bounds,
        name=nest.name,
    )
    with pytest.raises(ValueError, match="guarded"):
        to_source(guarded)
