"""Dtype-preservation tests.

Regression cases for the bare-counter promotion bug: counter values used
to enter expressions as an int64 ``np.arange``, which NumPy promotion
silently upcast float32 kernels to float64 mid-expression.  Counters now
materialise in the kernel dtype and the RHS is cast to the target dtype
before write-back, so a float32 run stays float32 end to end.
"""

import numpy as np
import pytest
import sympy as sp

from repro.core import adjoint_loops, make_loop_nest
from repro.runtime import Bindings, compile_nests

i = sp.Symbol("i", integer=True)
n = sp.Symbol("n", integer=True)
u, r = sp.Function("u"), sp.Function("r")


def test_bare_counter_stays_in_kernel_dtype(rng):
    """float32 kernel math with a bare counter happens in float32.

    The rhs ``u(i) * (i + 2**24)`` distinguishes the dtypes sharply:
    2**24 + i is exact in int64/float64 but rounds in float32 for odd i,
    so the int64-arange bug produced (more accurate but) different values
    than genuine float32 evaluation.
    """
    N = 63
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i) * (i + 2**24), counters=[i], bounds={i: [0, n]}
    )
    kernel = compile_nests(
        [nest], Bindings(sizes={n: N}, dtype=np.float32), cache=False
    )
    uv = rng.standard_normal(N + 1).astype(np.float32)
    arrays = {"u": uv.copy(), "r": np.zeros(N + 1, dtype=np.float32)}
    kernel(arrays)
    counters = np.arange(0, N + 1, dtype=np.float32)
    expected = uv * (counters + np.float32(2**24))
    np.testing.assert_array_equal(arrays["r"], expected)
    # And the float64 path (the buggy intermediate) disagrees, so this
    # test genuinely pins the dtype of the computation.
    promoted = (
        uv.astype(np.float64) * (np.arange(0, N + 1) + 2**24)
    ).astype(np.float32)
    assert (arrays["r"] != promoted).any()


@pytest.mark.parametrize("op", ["=", "+="])
def test_writeback_cast_to_target_dtype(rng, op):
    """A float32 target accepts the RHS without dtype errors for both ops."""
    N = 16
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i) + i, counters=[i], bounds={i: [0, n]}, op=op
    )
    kernel = compile_nests(
        [nest], Bindings(sizes={n: N}, dtype=np.float32), cache=False
    )
    uv = rng.standard_normal(N + 1).astype(np.float32)
    arrays = {"u": uv.copy(), "r": np.zeros(N + 1, dtype=np.float32)}
    kernel(arrays)
    expected = uv + np.arange(0, N + 1, dtype=np.float32)
    np.testing.assert_array_equal(arrays["r"], expected)
    assert arrays["r"].dtype == np.float32


def test_float32_adjoint_across_all_apps(any_problem, rng):
    """Every app's adjoint runs in float32 and tracks the float64 result."""
    prob, N = any_problem
    name_map = prob.adjoint_name_map()

    results = {}
    for dtype in (np.float64, np.float32):
        bindings = prob.bindings(N, dtype=dtype)
        kernel = compile_nests(
            adjoint_loops(prob.primal, prob.adjoint_map), bindings, cache=False
        )
        arrays = prob.allocate(N, rng=np.random.default_rng(7), dtype=dtype)
        arrays.update(
            prob.allocate_adjoints(N, rng=np.random.default_rng(8), dtype=dtype)
        )
        kernel(arrays)
        results[dtype] = arrays

    for prim in prob.active_input_names():
        adj = name_map[prim]
        assert results[np.float32][adj].dtype == np.float32
        np.testing.assert_allclose(
            results[np.float32][adj].astype(np.float64),
            results[np.float64][adj],
            rtol=5e-4,
            atol=5e-4,
        )
