"""Tests for loop tiling of compiled kernels."""

import numpy as np
import pytest

from repro.apps import heat_problem, wave_problem
from repro.core import adjoint_loops
from repro.runtime import compile_nests
from repro.runtime.tiling import run_tiled, tile_box


def test_tile_box_partitions():
    tiles = tile_box(((0, 9), (0, 9)), (4, 3))
    pts = set()
    for t in tiles:
        for x in range(t[0][0], t[0][1] + 1):
            for y in range(t[1][0], t[1][1] + 1):
                assert (x, y) not in pts
                pts.add((x, y))
    assert len(pts) == 100
    assert len(tiles) == 3 * 4  # ceil(10/4) * ceil(10/3)


def test_tile_box_oversized_tile_no_split():
    assert tile_box(((0, 9),), (100,)) == [((0, 9),)]


def test_tile_box_zero_means_unsplit():
    assert tile_box(((0, 9), (0, 9)), (0, 5)) == [
        ((0, 9), (0, 4)),
        ((0, 9), (5, 9)),
    ]


def test_tile_box_empty():
    assert tile_box(((3, 1),), (2,)) == []


def test_tile_box_lexicographic_order():
    tiles = tile_box(((0, 3),), (2,))
    assert tiles == [((0, 1),), ((2, 3),)]


@pytest.mark.parametrize("tile", [(4, 4), (7, 3), (1, 64), (64, 1)])
def test_tiled_adjoint_bitwise_equal(rng, tile):
    prob = heat_problem(2)
    N = 32
    kernel = compile_nests(
        adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(N)
    )
    base = prob.allocate(N, rng=rng)
    base.update(prob.allocate_adjoints(N, rng=rng))
    ref = {k: v.copy() for k, v in base.items()}
    kernel(ref)
    tiled = {k: v.copy() for k, v in base.items()}
    count = run_tiled(kernel, tiled, tile)
    assert count > len(kernel.regions) - 1  # actually tiled something
    np.testing.assert_array_equal(ref["u_1_b"], tiled["u_1_b"])


def test_tiled_primal_3d(rng):
    prob = wave_problem(3)
    N = 20
    kernel = compile_nests([prob.primal], prob.bindings(N))
    arrays = prob.allocate(N, rng=rng)
    ref = {k: v.copy() for k, v in arrays.items()}
    kernel(ref)
    tiled = {k: v.copy() for k, v in arrays.items()}
    run_tiled(kernel, tiled, (8, 8, 8))
    np.testing.assert_array_equal(ref["u"], tiled["u"])


def test_reduction_regions_not_tiled(rng):
    """Regions with reduced write targets fall back to untiled execution."""
    import sympy as sp

    from repro.core import make_loop_nest
    from repro.runtime import Bindings

    i, j = sp.symbols("i j", integer=True)
    n = sp.Symbol("n", integer=True)
    u, r = sp.Function("u"), sp.Function("r")
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i, j), counters=[i, j],
        bounds={i: [0, n], j: [0, n]}, op="+=",
    )
    N = 8
    kernel = compile_nests([nest], Bindings(sizes={n: N}))
    uv = rng.standard_normal((N + 1, N + 1))
    ref = {"u": uv, "r": np.zeros(N + 1)}
    kernel(ref)
    tiled = {"u": uv, "r": np.zeros(N + 1)}
    count = run_tiled(kernel, tiled, (2, 2))
    assert count == 1  # executed once, untiled
    np.testing.assert_array_equal(ref["r"], tiled["r"])
