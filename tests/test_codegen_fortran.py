"""Fortran back-end tests."""

import sympy as sp
import pytest

from repro.apps import burgers_problem, wave_problem
from repro.codegen import CodegenError, print_function_fortran
from repro.codegen.fortran import FortranPrinter
from repro.core import adjoint_loops

i = sp.Symbol("i", integer=True)
u = sp.Function("u")


def test_access_printed_with_parens():
    p = FortranPrinter()
    assert p.doprint(u(i - 1)) == "u(i - 1)"


def test_heaviside_printed_as_merge():
    p = FortranPrinter()
    out = p.doprint(sp.Heaviside(u(i)))
    assert out == "merge(1.0d0, 0.0d0, u(i) >= 0)"


def test_uninterpreted_derivative_call():
    f = sp.Function("f")
    expr = sp.diff(f(u(i - 1), u(i)), u(i - 1))
    assert FortranPrinter().doprint(expr) == "f_d1(u(i - 1), u(i))"


def test_wave_primal_subroutine():
    prob = wave_problem(3)
    code = print_function_fortran("wave3d", [prob.primal])
    assert "subroutine wave3d(" in code
    assert "implicit none" in code
    assert "!$omp parallel do private(i,j,k)" in code
    assert "do i = 1, n - 2" in code
    assert "end do" in code
    assert "real(kind=8), dimension(:, :, :) :: u" in code
    assert "integer :: n" in code
    assert code.rstrip().endswith("end subroutine wave3d")


def test_increment_expanded_to_assignment():
    """Fortran has no +=; increments print as x = x + (...)."""
    prob = wave_problem(1)
    code = print_function_fortran("w", [prob.primal])
    assert "u(i) = u(i) + (" in code


def test_adjoint_with_guards():
    prob = burgers_problem(1)
    nests = adjoint_loops(prob.primal, prob.adjoint_map, strategy="guarded")
    code = print_function_fortran("b", nests)
    assert ".and." in code and "end if" in code


def test_omp_end_directive_balanced():
    prob = wave_problem(2)
    code = print_function_fortran("w", [prob.primal])
    assert code.count("!$omp parallel do") == code.count("!$omp end parallel do")
