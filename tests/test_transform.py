"""Integration tests for the full adjoint-stencil pipeline (Section 3.3)."""

import sympy as sp
import pytest

from repro.core import LoopNest, Statement, adjoint_loops, make_loop_nest
from repro.core.transform import merge_statements

i = sp.Symbol("i", integer=True)
n = sp.Symbol("n", integer=True)
u, c, r = sp.Function("u"), sp.Function("c"), sp.Function("r")
u_b, r_b = sp.Function("u_b"), sp.Function("r_b")


def section32(merge=True, strategy="disjoint"):
    expr = c(i) * (2.0 * u(i - 1) - 3.0 * u(i) + 4 * u(i + 1))
    nest = make_loop_nest(
        lhs=r(i), rhs=expr, counters=[i], bounds={i: [1, n - 1]}, name="ex"
    )
    return adjoint_loops(nest, {r: r_b, u: u_b}, strategy=strategy, merge=merge)


def test_core_loop_is_last_and_named():
    nests = section32()
    assert nests[-1].name.endswith("core")
    assert nests[-1].bounds[i] == (sp.Integer(2), n - 2)


def test_core_statement_matches_paper():
    """The merged core statement of Section 3.2 with swapped coefficients."""
    core = section32()[-1]
    assert len(core.statements) == 1
    st = core.statements[0]
    expected = (
        4 * c(i - 1) * r_b(i - 1) - 3.0 * c(i) * r_b(i) + 2.0 * c(i + 1) * r_b(i + 1)
    )
    assert sp.expand(st.rhs - expected) == 0
    assert st.lhs == u_b(i)
    assert st.op == "+="


def test_remainder_statements_match_paper():
    """The six unrolled remainder updates of Section 3.2 (merged to four)."""
    nests = section32()
    assert len(nests) == 5
    rem = {tuple(nests[k].bounds[i]) for k in range(4)}
    assert rem == {(0, 0), (1, 1), (n - 1, n - 1), (n, n)}
    # j = 1 region merges the two paper statements into one.
    j1 = [x for x in nests if x.bounds[i] == (sp.Integer(1), sp.Integer(1))][0]
    expected = 2.0 * c(i + 1) * r_b(i + 1) - 3.0 * c(i) * r_b(i)
    assert sp.expand(j1.statements[0].rhs - expected) == 0


def test_unmerged_keeps_separate_statements():
    core = section32(merge=False)[-1]
    assert len(core.statements) == 3


def test_unknown_strategy_raises():
    with pytest.raises(ValueError):
        section32(strategy="magic")


def test_no_active_inputs_yields_empty():
    nest = make_loop_nest(lhs=r(i), rhs=c(i) * 2, counters=[i], bounds={i: [1, n - 1]})
    assert adjoint_loops(nest, {r: r_b}) == []


def test_padded_sets_flag():
    nests = section32(strategy="padded")
    assert len(nests) == 1
    assert nests[0].requires_padding


def test_disjoint_not_padded():
    assert not any(x.requires_padding for x in section32())


def test_merge_statements_sums_same_target():
    a = Statement(lhs=u_b(i), rhs=c(i), op="+=")
    b = Statement(lhs=u_b(i), rhs=r_b(i), op="+=")
    out = merge_statements([a, b])
    assert len(out) == 1
    assert sp.expand(out[0].rhs - (c(i) + r_b(i))) == 0


def test_merge_keeps_distinct_targets():
    a = Statement(lhs=u_b(i), rhs=c(i), op="+=")
    b = Statement(lhs=r_b(i), rhs=c(i), op="+=")
    assert len(merge_statements([a, b])) == 2


def test_merge_skips_guarded():
    g = Statement(lhs=u_b(i), rhs=c(i), op="+=", guard=sp.Ge(i, 1))
    a = Statement(lhs=u_b(i), rhs=r_b(i), op="+=")
    out = merge_statements([a, g])
    assert len(out) == 2


def test_merge_skips_assignments():
    a = Statement(lhs=u_b(i), rhs=c(i), op="=")
    b = Statement(lhs=u_b(i), rhs=r_b(i), op="=")
    assert len(merge_statements([a, b])) == 2


def test_guarded_strategy_core_plus_slabs():
    nests = section32(strategy="guarded")
    assert len(nests) == 3  # 2*1 + 1
    assert nests[-1].name.endswith("core")


def test_wave_adjoint_counts_with_active_c():
    """Activating c adds a centre-offset statement but no new regions."""
    from repro.apps import wave_problem

    with_c = wave_problem(3, active_c=True)
    without_c = wave_problem(3, active_c=False)
    n_with = len(adjoint_loops(with_c.primal, with_c.adjoint_map))
    n_without = len(adjoint_loops(without_c.primal, without_c.adjoint_map))
    assert n_with == n_without == 53
