"""All three boundary strategies (Section 3.3.4) must compute the same
adjoint: disjoint split, guarded slabs, and zero-padded single loop."""

import numpy as np
import pytest

from repro.apps import burgers_problem, conv_problem, heat_problem, wave_problem
from repro.core import adjoint_loops
from repro.runtime import compile_nests

CASES = [
    (lambda: wave_problem(1), 30),
    (lambda: wave_problem(2), 14),
    (lambda: burgers_problem(1), 30),
    (lambda: heat_problem(2), 14),
    (lambda: conv_problem(3), 14),
]


def run_strategy(prob, N, strategy, rng_seed=7):
    rng = np.random.default_rng(rng_seed)
    # The padded strategy's union space reaches one cell beyond the primal
    # space on each side; shrink the iteration space so reads stay in the
    # allocated arrays (this is the "AD tool controls allocation" premise
    # of Section 3.3.4).
    margin = prob.halo
    inner = prob.with_interior(margin)
    nests = adjoint_loops(inner.primal, inner.adjoint_map, strategy=strategy)
    arrays = inner.allocate(N, rng=rng)
    arrays.update(inner.allocate_adjoints(N, rng=rng))
    compile_nests(nests, inner.bindings(N))(arrays)
    name_map = inner.adjoint_name_map()
    return {name_map[a]: arrays[name_map[a]] for a in inner.active_input_names()}


@pytest.mark.parametrize("factory,N", CASES, ids=[f"{k}" for k in range(len(CASES))])
@pytest.mark.parametrize("strategy", ["guarded", "padded"])
def test_strategy_matches_disjoint(factory, N, strategy):
    prob = factory()
    ref = run_strategy(prob, N, "disjoint")
    got = run_strategy(prob, N, strategy)
    for name in ref:
        np.testing.assert_allclose(got[name], ref[name], rtol=1e-12, atol=1e-13)


def test_nest_count_ordering():
    """Code-size trade-off: padded (1) < guarded (2d+1) < disjoint."""
    prob = wave_problem(3)
    n_dis = len(adjoint_loops(prob.primal, prob.adjoint_map, strategy="disjoint"))
    n_gua = len(adjoint_loops(prob.primal, prob.adjoint_map, strategy="guarded"))
    n_pad = len(adjoint_loops(prob.primal, prob.adjoint_map, strategy="padded"))
    assert n_pad == 1
    assert n_gua == 7
    assert n_dis == 53
    assert n_pad < n_gua < n_dis
