"""Tests for the tape AD framework and the stencil primitive."""

import numpy as np
import pytest

from repro.apps import burgers_problem, conv_problem, heat_problem, wave_problem
from repro.tape import StencilOp, Variable


def fd_grad(f, x, h=1e-6):
    """Dense central-difference gradient of scalar f at array x."""
    g = np.zeros_like(x)
    flat = x.ravel()
    gf = g.ravel()
    for k in range(flat.size):
        old = flat[k]
        flat[k] = old + h
        fp = f(x)
        flat[k] = old - h
        fm = f(x)
        flat[k] = old
        gf[k] = (fp - fm) / (2 * h)
    return g


# -- core tape ------------------------------------------------------------------


def test_add_mul_gradients():
    x = Variable(np.array([1.0, 2.0]))
    y = Variable(np.array([3.0, 4.0]))
    z = (x * y + x).sum()
    z.backward()
    np.testing.assert_allclose(x.grad, [4.0, 5.0])
    np.testing.assert_allclose(y.grad, [1.0, 2.0])


def test_broadcast_scalar_gradient():
    x = Variable(np.ones((2, 3)))
    s = Variable(2.0)
    z = (x * s).sum()
    z.backward()
    assert s.grad.shape == ()
    np.testing.assert_allclose(s.grad, 6.0)


def test_division_and_power():
    x = Variable(np.array([2.0, 4.0]))
    z = (1.0 / x + x**3).sum()
    z.backward()
    np.testing.assert_allclose(x.grad, -1.0 / x.value**2 + 3 * x.value**2)


def test_unary_chain():
    x = Variable(np.array([0.3, -0.7]))
    z = x.sin().exp().sum()
    z.backward()
    np.testing.assert_allclose(
        x.grad, np.exp(np.sin(x.value)) * np.cos(x.value), rtol=1e-12
    )


def test_relu_kink_convention():
    x = Variable(np.array([-1.0, 0.0, 2.0]))
    x.relu().sum().backward()
    np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0])


def test_reused_variable_accumulates():
    x = Variable(3.0)
    z = x * x + x * 2.0
    z.backward()
    np.testing.assert_allclose(x.grad, 2 * 3.0 + 2.0)


def test_dot_and_mean():
    x = Variable(np.array([1.0, 2.0, 3.0]))
    y = Variable(np.array([4.0, 5.0, 6.0]))
    z = x.dot(y) + x.mean()
    z.backward()
    np.testing.assert_allclose(x.grad, y.value + 1.0 / 3.0)


def test_backward_twice_resets():
    x = Variable(np.array([1.0, 2.0]))
    z = (x * x).sum()
    z.backward()
    g1 = x.grad.copy()
    z.backward()
    np.testing.assert_allclose(x.grad, g1)


def test_tanh_log():
    x = Variable(np.array([0.5, 1.5]))
    z = (x.tanh() + x.log()).sum()
    z.backward()
    np.testing.assert_allclose(
        x.grad, 1 - np.tanh(x.value) ** 2 + 1 / x.value, rtol=1e-12
    )


def test_nonscalar_exponent_rejected():
    x = Variable(np.ones(3))
    with pytest.raises(TypeError):
        x ** np.ones(3)


# -- stencil primitive ---------------------------------------------------------


def test_stencil_op_forward_matches_kernel(rng):
    prob = heat_problem(2)
    N = 14
    op = StencilOp(prob, N)
    arrays = prob.allocate(N, rng=rng)
    out = op(u_1=Variable(arrays["u_1"]))
    from repro.runtime import compile_nests

    ref = dict(arrays)
    compile_nests([prob.primal], prob.bindings(N))(ref)
    np.testing.assert_allclose(out.value, ref["u"], rtol=1e-13)


def test_stencil_op_gradient_matches_fd(rng):
    prob = heat_problem(1)
    N = 12
    op = StencilOp(prob, N)
    u0 = rng.standard_normal(prob.array_shape(N)) * 0.1

    def loss_np(u_arr):
        out = op(u_1=u_arr)
        return float((out * out).sum().value)

    u = Variable(u0.copy())
    loss = (op(u_1=u) * op(u_1=u)).sum()
    loss.backward()
    np.testing.assert_allclose(u.grad, fd_grad(loss_np, u0.copy()), atol=1e-6)


def test_stencil_composed_with_elementwise(rng):
    """J = sum(tanh(stencil(u))^2): taped ops around the stencil primitive."""
    prob = burgers_problem(1)
    N = 24
    op = StencilOp(prob, N)
    u0 = rng.standard_normal(prob.array_shape(N)) * 0.1

    def loss_np(u_arr):
        v = Variable(u_arr.copy())
        return float((op(u_1=v).tanh() ** 2).sum().value)

    u = Variable(u0.copy())
    loss = (op(u_1=u).tanh() ** 2).sum()
    loss.backward()
    np.testing.assert_allclose(u.grad, fd_grad(loss_np, u0.copy()), atol=1e-6)


def test_stencil_time_loop_through_tape(rng):
    """Several taped stencil steps: the tape handles the time loop, the
    stencil adjoint handles each step — the paper's division of labour."""
    prob = heat_problem(1)
    N = 16
    op = StencilOp(prob, N)
    u0 = rng.standard_normal(prob.array_shape(N)) * 0.1
    steps = 4

    def loss_np(u_arr):
        u_curr = u_arr.copy()
        for _ in range(steps):
            v = op(u_1=u_curr)
            u_curr = v.value
        return float(0.5 * np.sum(u_curr**2))

    u = Variable(u0.copy())
    state = u
    for _ in range(steps):
        state = op(u_1=state)
    loss = (state * state).sum() * 0.5
    loss.backward()
    np.testing.assert_allclose(u.grad, fd_grad(loss_np, u0.copy()), atol=1e-6)


def test_stencil_op_multiple_active_inputs(rng):
    """Wave with active c: gradients flow to both u_1 and c."""
    prob = wave_problem(1, active_c=True)
    N = 18
    op = StencilOp(prob, N)
    shape = prob.array_shape(N)
    arrays = prob.allocate(N, rng=rng)
    u1 = Variable(arrays["u_1"])
    c = Variable(arrays["c"])
    out = op(u_1=u1, u_2=arrays["u_2"], c=c)
    (out * out).sum().backward()
    assert np.abs(u1.grad).max() > 0
    assert np.abs(c.grad).max() > 0

    def loss_np_c(c_arr):
        o = op(u_1=arrays["u_1"], u_2=arrays["u_2"], c=c_arr)
        return float((o * o).sum().value)

    np.testing.assert_allclose(
        c.grad, fd_grad(loss_np_c, arrays["c"].copy()), atol=1e-6
    )


def test_stencil_op_rejects_passive_variable(rng):
    prob = wave_problem(1, active_c=False)
    op = StencilOp(prob, 12)
    arrays = prob.allocate(12, rng=rng)
    with pytest.raises(TypeError):
        op(u_1=arrays["u_1"], u_2=arrays["u_2"], c=Variable(arrays["c"]))


def test_stencil_op_rejects_missing_input(rng):
    prob = wave_problem(1)
    op = StencilOp(prob, 12)
    with pytest.raises(TypeError):
        op(u_1=np.zeros(13))


def test_stencil_op_rejects_bad_shape():
    prob = heat_problem(1)
    op = StencilOp(prob, 12)
    with pytest.raises(ValueError):
        op(u_1=np.zeros(5))


def test_conv_layer_in_tape(rng):
    """CNN-flavoured: conv -> relu -> sum, gradient checked by FD."""
    prob = conv_problem(3)
    N = 10
    op = StencilOp(prob, N)
    img0 = rng.standard_normal(prob.array_shape(N)) * 0.5

    def loss_np(img_arr):
        v = Variable(img_arr.copy())
        return float(op(img=v).relu().sum().value)

    img = Variable(img0.copy())
    loss = op(img=img).relu().sum()
    loss.backward()
    np.testing.assert_allclose(img.grad, fd_grad(loss_np, img0.copy()), atol=1e-6)
