"""Machine model and descriptor tests, including calibration against the
paper's published runtimes (Figures 10/11/14/15, Section 5.1)."""

import pytest

from repro.apps import burgers_problem, wave_problem
from repro.baselines.scatter import tapenade_style_adjoint
from repro.baselines.stack import nonlinear_intermediates
from repro.core import adjoint_loops
from repro.experiments import PAPER, burgers_descriptors, wave_descriptors
from repro.machine import BROADWELL, KNL, analyze_nests, analyze_scatter


# -- descriptors ---------------------------------------------------------------


def test_wave_primal_descriptor():
    prob = wave_problem(3, active_c=False)
    d = analyze_nests([prob.primal], {"n": 100})
    assert d.points == 98**3
    assert d.bytes_per_point == 8 * (3 + 2)  # reads u_1,u_2,c; rmw u
    assert not d.has_heaviside and not d.has_minmax
    assert not d.multi_statement


def test_burgers_descriptor_flags():
    prob = burgers_problem(1)
    d = analyze_nests([prob.primal], {"n": 100})
    assert d.has_minmax and not d.has_heaviside
    adj = analyze_nests(adjoint_loops(prob.primal, prob.adjoint_map), {"n": 100})
    assert adj.has_heaviside


def test_adjoint_descriptor_multi_statement():
    prob = wave_problem(3, active_c=False)
    adj = analyze_nests(adjoint_loops(prob.primal, prob.adjoint_map), {"n": 50})
    assert adj.multi_statement and not adj.optimized
    assert adj.n_parallel_loops == 53


def test_scatter_descriptor_counts_updates():
    prob = wave_problem(3, active_c=False)
    scat = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    d = analyze_scatter(scat, {"n": 50})
    assert d.scatter_updates_per_point == 8.0


def test_cse_reduces_flops():
    prob = wave_problem(3, active_c=False)
    scat = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    raw = analyze_nests([scat], {"n": 50}, cse=False)
    opt = analyze_nests([scat], {"n": 50}, cse=True)
    assert opt.flops_per_point < raw.flops_per_point


def test_with_stack_traffic():
    prob = burgers_problem(1)
    scat = tapenade_style_adjoint(prob.primal, prob.adjoint_map)
    d = analyze_scatter(scat, {"n": 100}).with_stack(
        len(nonlinear_intermediates(prob.primal))
    )
    assert d.stack_bytes_per_point == 32.0


def test_empty_nests_raise():
    prob = wave_problem(1)
    with pytest.raises(ValueError):
        analyze_nests([prob.primal], {"n": 2})  # interior [1, 0]: empty


# -- model structure -------------------------------------------------------------


def test_effective_units_saturate():
    assert KNL.effective_units(64) == 64
    assert KNL.effective_units(256) == 64 + 0.2 * 192
    assert BROADWELL.effective_units(12) == 12


def test_gather_time_decreases_then_saturates():
    d = wave_descriptors().primal
    t = [BROADWELL.time(d, p, "gather") for p in (1, 2, 4, 8, 12)]
    # Allow the microsecond-scale fork/join term after bandwidth saturation.
    assert all(t[k + 1] <= t[k] + 1e-3 for k in range(len(t) - 1))


def test_atomic_time_increases_with_threads():
    """Section 5.1: atomics slow down with every added thread."""
    d = wave_descriptors().scatter
    t = [BROADWELL.time(d, p, "atomic") for p in (1, 2, 4, 8, 12)]
    assert all(t[k + 1] > t[k] for k in range(len(t) - 1))


def test_serial_mode_ignores_threads():
    d = wave_descriptors().scatter
    assert BROADWELL.time(d, 12, "serial") == BROADWELL.time(d, 1, "serial")


def test_stack_mode_adds_cost():
    d = burgers_descriptors().stack
    assert KNL.time(d, 1, "stack") > KNL.time(d, 1, "serial")


def test_invalid_mode_and_threads():
    d = wave_descriptors().primal
    with pytest.raises(ValueError):
        BROADWELL.time(d, 1, "warp")
    with pytest.raises(ValueError):
        BROADWELL.time(d, 0, "gather")


def test_knl_wave_primal_plateaus_at_16():
    """Section 5.2: the wave primal scales to ~16 threads, then plateaus."""
    d = wave_descriptors().primal
    s = dict(KNL.speedup_curve(d, [16, 32, 64]))
    assert s[16] > 15
    assert s[64] < 17


def test_knl_wave_adjoint_scales_past_primal():
    """PerforAD's adjoint keeps scaling to 32 threads (more flops/byte)."""
    d = wave_descriptors()
    s_adj = dict(KNL.speedup_curve(d.perforad, [16, 32]))
    s_pri = dict(KNL.speedup_curve(d.primal, [16, 32]))
    assert s_adj[32] > 30
    assert s_adj[32] > s_pri[32]


def test_crossover_at_two_threads():
    """Figures 8/9: PerforAD beats the conventional serial adjoint from
    2 threads on, despite being slower in serial."""
    for desc in (wave_descriptors(), burgers_descriptors()):
        serial_conventional = BROADWELL.time(desc.scatter, 1, "serial")
        assert BROADWELL.time(desc.perforad, 1, "gather") > serial_conventional * 0.9
        assert BROADWELL.time(desc.perforad, 2, "gather") < serial_conventional


# -- calibration against the paper's published values ---------------------------


@pytest.mark.parametrize(
    "label,series,mode,machine,paper_key",
    [
        ("wave", "primal", "gather", BROADWELL, "fig10"),
        ("wave", "perforad", "gather", BROADWELL, "fig10"),
        ("burgers", "primal", "gather", BROADWELL, "fig11"),
        ("burgers", "perforad", "gather", BROADWELL, "fig11"),
        ("wave", "primal", "gather", KNL, "fig14"),
        ("wave", "perforad", "gather", KNL, "fig14"),
        ("burgers", "primal", "gather", KNL, "fig15"),
        ("burgers", "perforad", "gather", KNL, "fig15"),
    ],
)
def test_serial_calibration_within_tolerance(label, series, mode, machine, paper_key):
    desc = wave_descriptors() if label == "wave" else burgers_descriptors()
    d = getattr(desc, series)
    key = "Primal Serial" if series == "primal" else "PerforAD Serial"
    predicted = machine.time(d, 1, mode)
    paper = PAPER[paper_key][key]
    assert 0.55 < predicted / paper < 1.5, (predicted, paper)


def test_atomics_91s_reproduced():
    d = wave_descriptors().scatter
    t = BROADWELL.time(d, 1, "atomic")
    assert 0.8 < t / 91.0 < 1.2


def test_best_parallel_within_tolerance():
    for desc, machine, key in [
        (wave_descriptors(), BROADWELL, "fig10"),
        (burgers_descriptors(), BROADWELL, "fig11"),
        (wave_descriptors(), KNL, "fig14"),
        (burgers_descriptors(), KNL, "fig15"),
    ]:
        paper = PAPER[key]["PerforAD Parallel"]
        _, t = machine.best_time(
            desc.perforad, "gather",
            thread_counts=range(1, machine.max_threads + 1),
        )
        assert 0.55 < t / paper < 1.5


def test_headline_factor_ordering():
    """The paper's headline factors (3.4x, 5.7x, 19x, 125x) keep their
    ordering and rough magnitude in the model."""
    wave = wave_descriptors()
    burg = burgers_descriptors()
    f_bdw_wave = BROADWELL.time(wave.scatter, 1, "serial") / BROADWELL.best_time(
        wave.perforad, "gather")[1]
    f_bdw_burg = BROADWELL.time(burg.scatter, 1, "serial") / BROADWELL.best_time(
        burg.perforad, "gather")[1]
    f_knl_wave = KNL.time(wave.scatter, 1, "serial") / KNL.best_time(
        wave.perforad, "gather")[1]
    f_knl_burg = KNL.time(burg.stack, 1, "stack") / KNL.best_time(
        burg.perforad, "gather")[1]
    assert f_bdw_wave < f_bdw_burg < f_knl_wave < f_knl_burg
    assert f_knl_burg > 100
    assert f_knl_wave > 15
    assert 2 < f_bdw_wave < 8
