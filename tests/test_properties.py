"""Property-based tests (hypothesis) on the core invariants.

Random stencils — arbitrary dimensions, offsets, and coefficients — must
satisfy, for every boundary strategy:

* **adjoint consistency**: the assembled adjoint operator is exactly the
  transpose of the primal operator (for linear stencils), verified via the
  dot-product identity at machine precision;
* **partition**: the disjoint split's regions partition the union of the
  shifted iteration spaces, with exactly the valid statements in each;
* **gather == scatter**: the transformed adjoint agrees with the
  conventional scatter adjoint;
* **count bound**: at most (2n-1)^d loop nests are generated;
* **determinism**: parallel block execution is bitwise-identical to
  serial execution for gather kernels (Section 3.5's point that all
  updates to an index happen in one iteration).
"""

from __future__ import annotations

import itertools

import numpy as np
import sympy as sp
from hypothesis import given, settings, strategies as st

from repro.core import adjoint_loops, make_loop_nest
from repro.core.diff import adjoint_scatter_loop, adjoint_scatter_statements
from repro.core.regions import split_disjoint
from repro.core.shift import shift_all
from repro.runtime import Bindings, ParallelExecutor, compile_nests

N_VAL = 16  # concrete grid size for executions
n = sp.Symbol("n", integer=True)


@st.composite
def stencils(draw, max_dim=3, max_radius=2, max_points=6):
    """A random linear stencil: dim, distinct offset vectors, coefficients."""
    dim = draw(st.integers(1, max_dim))
    npoints = draw(st.integers(1, max_points))
    offsets = draw(
        st.lists(
            st.tuples(*[st.integers(-max_radius, max_radius) for _ in range(dim)]),
            min_size=1,
            max_size=npoints,
            unique=True,
        )
    )
    coeffs = draw(
        st.lists(
            st.floats(-3, 3, allow_nan=False, allow_infinity=False).filter(
                lambda x: abs(x) > 1e-3
            ),
            min_size=len(offsets),
            max_size=len(offsets),
        )
    )
    return dim, offsets, coeffs


def build_nest(dim, offsets, coeffs):
    counters = sp.symbols("i j k", integer=True)[:dim]
    u, r = sp.Function("u"), sp.Function("r")
    radius = max(max(abs(o) for o in off) for off in offsets)
    radius = max(radius, 1)
    expr = sum(
        co * u(*[c + o for c, o in zip(counters, off)])
        for off, co in zip(offsets, coeffs)
    )
    nest = make_loop_nest(
        lhs=r(*counters),
        rhs=expr,
        counters=list(counters),
        bounds={c: [radius, n - radius] for c in counters},
        op="+=",
    )
    return nest, {r: sp.Function("r_b"), u: sp.Function("u_b")}, radius


def shape_for(dim):
    return (N_VAL + 1,) * dim


@settings(max_examples=40, deadline=None)
@given(stencils())
def test_adjoint_is_transpose(params):
    """<J v, w> == <v, J^T w> at machine precision for random stencils."""
    dim, offsets, coeffs = params
    nest, amap, radius = build_nest(dim, offsets, coeffs)
    bind = Bindings(sizes={n: N_VAL})
    rng = np.random.default_rng(hash((dim, tuple(offsets))) % 2**32)
    shape = shape_for(dim)
    v = rng.standard_normal(shape)
    w = np.zeros(shape)
    interior = tuple(slice(radius, N_VAL - radius + 1) for _ in range(dim))
    w[interior] = rng.standard_normal(w[interior].shape)

    # J v via the primal (linear stencil: out(v) = J v exactly).
    arrays = {"u": v, "r": np.zeros(shape)}
    compile_nests([nest], bind)(arrays)
    lhs = float(np.vdot(arrays["r"], w))

    # J^T w via the adjoint stencil loops.
    adj = adjoint_loops(nest, amap)
    arrays_b = {"u": v, "r_b": w, "u_b": np.zeros(shape)}
    compile_nests(adj, bind)(arrays_b)
    rhs = float(np.vdot(v, arrays_b["u_b"]))

    assert abs(lhs - rhs) <= 1e-9 * max(1.0, abs(lhs))


@settings(max_examples=40, deadline=None)
@given(stencils())
def test_gather_equals_scatter(params):
    dim, offsets, coeffs = params
    nest, amap, radius = build_nest(dim, offsets, coeffs)
    bind = Bindings(sizes={n: N_VAL})
    rng = np.random.default_rng(0)
    shape = shape_for(dim)
    w = np.zeros(shape)
    interior = tuple(slice(radius, N_VAL - radius + 1) for _ in range(dim))
    w[interior] = rng.standard_normal(w[interior].shape)
    uv = rng.standard_normal(shape)

    a1 = {"u": uv, "r_b": w.copy(), "u_b": np.zeros(shape)}
    a2 = {"u": uv, "r_b": w.copy(), "u_b": np.zeros(shape)}
    compile_nests(adjoint_loops(nest, amap), bind)(a1)
    compile_nests([adjoint_scatter_loop(nest, amap)], bind)(a2)
    np.testing.assert_allclose(a1["u_b"], a2["u_b"], rtol=1e-10, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(stencils(max_dim=2))
def test_partition_property(params):
    """Regions are pairwise disjoint and cover each shifted space exactly."""
    dim, offsets, coeffs = params
    nest, amap, radius = build_nest(dim, offsets, coeffs)
    contribs = adjoint_scatter_statements(nest, amap)
    shifted = shift_all(contribs, nest.counters)
    regions = split_disjoint(shifted, nest.counters, nest.bounds)

    subs = {n: N_VAL}
    seen: dict[tuple, object] = {}
    for region in regions:
        rngs = []
        for c in nest.counters:
            lo, hi = region.bounds[c]
            rngs.append(range(int(lo.subs(subs)), int(hi.subs(subs)) + 1))
        for p in itertools.product(*rngs):
            assert p not in seen
            seen[p] = region

    for sh in shifted:
        boxes = []
        for d, c in enumerate(nest.counters):
            lo, hi = nest.bounds[c]
            boxes.append(
                range(
                    int(lo.subs(subs)) + sh.offset[d],
                    int(hi.subs(subs)) + sh.offset[d] + 1,
                )
            )
        for p in itertools.product(*boxes):
            assert p in seen
            assert sh in seen[p].statements


@settings(max_examples=40, deadline=None)
@given(stencils())
def test_loop_count_bound(params):
    dim, offsets, coeffs = params
    nest, amap, _ = build_nest(dim, offsets, coeffs)
    nests = adjoint_loops(nest, amap)
    per_dim = [len({off[d] for off in offsets}) for d in range(dim)]
    bound = 1
    for m in per_dim:
        bound *= 2 * m - 1
    assert 1 <= len(nests) <= bound


@settings(max_examples=15, deadline=None)
@given(stencils(max_dim=2), st.integers(2, 5))
def test_parallel_determinism(params, threads):
    """Gather adjoints are bitwise deterministic under block parallelism."""
    dim, offsets, coeffs = params
    nest, amap, radius = build_nest(dim, offsets, coeffs)
    bind = Bindings(sizes={n: N_VAL})
    rng = np.random.default_rng(5)
    shape = shape_for(dim)
    w = np.zeros(shape)
    interior = tuple(slice(radius, N_VAL - radius + 1) for _ in range(dim))
    w[interior] = rng.standard_normal(w[interior].shape)
    uv = rng.standard_normal(shape)
    kernel = compile_nests(adjoint_loops(nest, amap), bind)

    ref = {"u": uv, "r_b": w.copy(), "u_b": np.zeros(shape)}
    kernel(ref)
    par = {"u": uv, "r_b": w.copy(), "u_b": np.zeros(shape)}
    with ParallelExecutor(num_threads=threads, min_block_iterations=1) as ex:
        ex.run(kernel, par)
    np.testing.assert_array_equal(ref["u_b"], par["u_b"])  # bitwise


@settings(max_examples=25, deadline=None)
@given(stencils(max_dim=2))
def test_strategies_agree_on_random_stencils(params):
    dim, offsets, coeffs = params
    nest, amap, radius = build_nest(dim, offsets, coeffs)
    bind = Bindings(sizes={n: N_VAL})
    rng = np.random.default_rng(9)
    shape = shape_for(dim)
    w = np.zeros(shape)
    interior = tuple(slice(radius, N_VAL - radius + 1) for _ in range(dim))
    w[interior] = rng.standard_normal(w[interior].shape)
    uv = rng.standard_normal(shape)

    results = {}
    for strategy in ("disjoint", "guarded"):
        arrays = {"u": uv, "r_b": w.copy(), "u_b": np.zeros(shape)}
        compile_nests(adjoint_loops(nest, amap, strategy=strategy), bind)(arrays)
        results[strategy] = arrays["u_b"]
    np.testing.assert_allclose(
        results["disjoint"], results["guarded"], rtol=1e-10, atol=1e-12
    )
