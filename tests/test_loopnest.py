"""Unit tests for repro.core.loopnest (Statement, LoopNest, make_loop_nest)."""

import sympy as sp
import pytest

from repro.core import LoopNest, Statement, make_loop_nest

i, j = sp.symbols("i j", integer=True)
n = sp.Symbol("n", integer=True)
C = sp.Symbol("C", real=True)
u, r, c = sp.Function("u"), sp.Function("r"), sp.Function("c")


def make_simple():
    return make_loop_nest(
        lhs=r(i), rhs=C * u(i - 1) + u(i + 1), counters=[i], bounds={i: [1, n - 1]}
    )


def test_statement_rejects_bad_op():
    with pytest.raises(ValueError):
        Statement(lhs=r(i), rhs=u(i), op="*=")


def test_statement_rejects_non_access_target():
    with pytest.raises(TypeError):
        Statement(lhs=sp.Symbol("x"), rhs=u(i))


def test_statement_reads_and_target():
    st = Statement(lhs=r(i), rhs=u(i - 1) + u(i + 1), op="+=")
    assert st.target_name == "r"
    assert st.read_accesses() == sorted([u(i - 1), u(i + 1)], key=sp.default_sort_key)


def test_statement_subs():
    st = Statement(lhs=r(i), rhs=u(i - 1), op="+=")
    st2 = st.subs({i: i + 1})
    assert st2.lhs == r(i + 1)
    assert st2.rhs == u(i)


def test_statement_str_with_guard():
    st = Statement(lhs=r(i), rhs=u(i), op="+=", guard=sp.Ge(i, 1))
    assert "if" in str(st)


def test_loopnest_requires_bounds_for_counters():
    with pytest.raises(ValueError):
        LoopNest(statements=(Statement(lhs=r(i), rhs=u(i)),), counters=(i,), bounds={})


def test_make_loop_nest_basic_queries():
    nest = make_simple()
    assert nest.dim == 1
    assert nest.written_arrays() == ["r"]
    assert nest.read_arrays() == ["u"]
    assert nest.size_symbols() == [n]
    assert nest.scalar_parameters() == [C]
    assert nest.bound(i) == (sp.Integer(1), n - 1)


def test_iteration_count():
    nest = make_simple()
    assert sp.expand(nest.iteration_count()) == n - 1
    assert nest.iteration_count({n: 11}) == 10


def test_subs_applies_to_bounds_and_body():
    nest = make_simple()
    nest2 = nest.subs({n: 21})
    assert nest2.bounds[i] == (sp.Integer(1), sp.Integer(20))


def test_multidim_nest():
    nest = make_loop_nest(
        lhs=r(i, j),
        rhs=u(i - 1, j) + u(i, j + 1),
        counters=[i, j],
        bounds={i: [1, n - 2], j: [1, n - 2]},
    )
    assert nest.dim == 2
    assert sp.expand(nest.iteration_count()) == sp.expand((n - 2) ** 2)


def test_str_contains_bounds_and_statement():
    s = str(make_simple())
    assert "u(i - 1)" in s and "[1, n - 1]" in s


def test_with_name():
    assert make_simple().with_name("foo").name == "foo"


def test_diff_entrypoint_returns_nests(example_1d):
    nest, amap = example_1d
    out = nest.diff(amap)
    assert len(out) == 5
    assert all(isinstance(x, LoopNest) for x in out)


def test_tangent_entrypoint(example_1d):
    nest, amap = example_1d
    tmap = {k: sp.Function(k.__name__ + "_d") for k in amap}
    tan = nest.tangent(tmap)
    assert tan.written_arrays() == ["r_d"]
