"""Error-path coverage: ensemble stacking/binding and CLI validation.

The happy paths of :func:`~repro.runtime.ensemble.stack_arrays`,
:class:`~repro.runtime.ensemble.EnsemblePlan` and the CLI are covered by
their own suites; this module pins down the *rejection* behaviour —
malformed ensembles must fail loudly at construction (a silently
promoted dtype or ragged stack would break the bitwise contract
downstream), degenerate worker/chunk configurations must still be
bitwise correct, and ``repro adjoint`` must reject nonsensical
arguments with a diagnostic exit code instead of a traceback.
"""

import numpy as np
import pytest

from repro.apps import heat_problem
from repro.cli import main
from repro.core import adjoint_loops
from repro.runtime import KernelError, compile_nests, stack_arrays
from repro.runtime.ensemble import EnsemblePlan


def _kernel(n=10):
    prob = heat_problem(1)
    return (
        prob,
        compile_nests(
            adjoint_loops(prob.primal, prob.adjoint_map), prob.bindings(n)
        ),
        n,
    )


# -- stack_arrays ---------------------------------------------------------------


def test_stack_arrays_rejects_empty():
    with pytest.raises(ValueError, match="at least one"):
        stack_arrays([])


def test_stack_arrays_rejects_mismatched_names():
    with pytest.raises(ValueError, match="member 1 holds arrays"):
        stack_arrays([{"u": np.zeros(3)}, {"v": np.zeros(3)}])


def test_stack_arrays_rejects_mixed_dtypes():
    """np.stack would silently promote f32 -> f64; the stacker must not."""
    members = [
        {"u": np.zeros(3, dtype=np.float64)},
        {"u": np.zeros(3, dtype=np.float32)},
    ]
    with pytest.raises(ValueError, match="float32.*member 0 has.*float64"):
        stack_arrays(members)


def test_stack_arrays_rejects_mixed_shapes():
    members = [{"u": np.zeros((3, 3))}, {"u": np.zeros((3, 4))}]
    with pytest.raises(ValueError, match=r"\(3, 4\).*member 0 has"):
        stack_arrays(members)


# -- EnsemblePlan construction ----------------------------------------------------


def test_ensemble_rejects_missing_kernel_arrays():
    prob, kernel, n = _kernel()
    batched = stack_arrays([prob.allocate_state(n, seed=0)])
    del batched["u_b"]
    with pytest.raises(KernelError, match=r"missing kernel arrays \['u_b'\]"):
        EnsemblePlan(kernel.plan(), batched)


def test_ensemble_rejects_mismatched_member_extents():
    prob, kernel, n = _kernel()
    batched = stack_arrays([prob.allocate_state(n, seed=m) for m in range(3)])
    batched["u_b"] = batched["u_b"][:2]
    with pytest.raises(KernelError, match="one leading member axis"):
        EnsemblePlan(kernel.plan(), batched)


def test_ensemble_rejects_scatter_plans_and_bad_workers():
    prob, kernel, n = _kernel()
    batched = stack_arrays([prob.allocate_state(n, seed=0)])
    with pytest.raises(KernelError, match="scatter"):
        EnsemblePlan(kernel.plan(scatter=True, num_threads=2), batched)
    with pytest.raises(ValueError, match="workers"):
        EnsemblePlan(kernel.plan(), batched, workers=0)


def test_ensemble_member_arrays_bounds_checked():
    prob, kernel, n = _kernel()
    ens = EnsemblePlan(
        kernel.plan(), stack_arrays([prob.allocate_state(n, seed=0)])
    )
    with pytest.raises(IndexError):
        ens.member_arrays(1)
    with pytest.raises(IndexError):
        ens.member_arrays(-1)


# -- degenerate worker/chunk configurations stay bitwise correct -------------------


def _run_config(prob, kernel, n, members, **kwargs):
    states = [prob.allocate_state(n, seed=m) for m in range(members)]
    batched = stack_arrays(states)
    with EnsemblePlan(kernel.plan(), batched, **kwargs) as ens:
        for _ in range(3):
            ens.run()
    return batched


@pytest.mark.parametrize("kwargs", [
    dict(workers=8),            # more workers than members
    dict(chunks=1, workers=2),  # single chunk under threads
    dict(chunks=99),            # more chunks than members: clamped
    dict(workers=2, chunks=2),
])
def test_degenerate_configs_match_reference(kwargs):
    prob, kernel, n = _kernel()
    members = 2
    ref = _run_config(prob, kernel, n, members)
    out = _run_config(prob, kernel, n, members, **kwargs)
    for name in ref:
        assert ref[name].tobytes() == out[name].tobytes(), (name, kwargs)


def test_chunk_count_clamped_to_members():
    prob, kernel, n = _kernel()
    batched = stack_arrays([prob.allocate_state(n, seed=m) for m in range(2)])
    assert EnsemblePlan(kernel.plan(), batched, chunks=99).chunk_count == 2
    assert EnsemblePlan(kernel.plan(), batched, chunks=0).chunk_count == 1


# -- `repro adjoint` CLI argument validation ---------------------------------------


@pytest.mark.parametrize("argv,message", [
    (["adjoint", "--steps", "0"], "at least one time step"),
    (["adjoint", "--steps", "-3"], "at least one time step"),
    (["adjoint", "--snaps", "0"], "at least one snapshot slot"),
    (["adjoint", "--members", "0"], "at least one member"),
])
def test_adjoint_cli_rejects_bad_counts(argv, message, capsys, tmp_path):
    assert main(argv + ["--output", str(tmp_path / "b.json")]) == 2
    assert message in capsys.readouterr().out
    assert not (tmp_path / "b.json").exists()


def test_adjoint_cli_rejects_unknown_problem_and_workers():
    with pytest.raises(SystemExit):
        main(["adjoint", "--problem", "navier3d"])
    with pytest.raises(SystemExit):
        main(["adjoint", "--workers", "0"])


def test_adjoint_cli_rejects_baseline_context_mismatch(tmp_path, capsys):
    """A baseline recorded with different options must not be compared."""
    import json

    out = tmp_path / "BENCH_checkpoint.json"
    assert main([
        "adjoint", "--problem", "heat1d", "--n", "12", "--steps", "4",
        "--snaps", "2", "--reps", "1", "--output", str(out),
    ]) == 0
    record = json.loads(out.read_text())
    record["snaps"] = 3  # pretend the baseline used another budget
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(record))
    rc = main([
        "adjoint", "--problem", "heat1d", "--n", "12", "--steps", "4",
        "--snaps", "2", "--reps", "1", "--output", str(out),
        "--baseline", str(baseline),
    ])
    assert rc == 1
    assert "does not match this" in capsys.readouterr().out
