"""Unit tests for repro.core.symbols."""

import sympy as sp
import pytest

from repro.core.symbols import (
    accesses_of,
    adjoint_name,
    all_array_accesses,
    array,
    array_name,
    arrays,
    counters,
    free_counters,
    is_array_access,
    make_adjoint_function,
    scalars,
)


def test_array_creates_undefined_function():
    u = array("u")
    i = sp.Symbol("i")
    assert is_array_access(u(i))
    assert array_name(u(i)) == "u"
    assert array_name(u) == "u"


def test_arrays_splits_names():
    u, v, w = arrays("u v w")
    assert array_name(u) == "u" and array_name(w) == "w"
    a, b = arrays("a,b")
    assert array_name(b) == "b"


def test_counters_are_integer():
    i, j = counters("i j")
    assert i.is_integer and j.is_integer


def test_scalars_are_real():
    (c,) = scalars("c")
    assert c.is_real


def test_is_array_access_rejects_interpreted():
    i = sp.Symbol("i")
    assert not is_array_access(sp.sin(i))
    assert not is_array_access(sp.Max(i, 0))
    assert not is_array_access(i)


def test_array_name_raises_on_non_access():
    with pytest.raises(TypeError):
        array_name(sp.Symbol("x"))


def test_adjoint_name_and_function():
    assert adjoint_name("u") == "u_b"
    assert adjoint_name("u", "_d") == "u_d"
    u = array("u")
    ub = make_adjoint_function(u)
    assert array_name(ub) == "u_b"


def test_free_counters_ordering():
    i, j, k = counters("i j k")
    u = array("u")
    expr = u(j, k) + 1
    assert free_counters(expr, [i, j, k]) == [j, k]


def test_all_array_accesses_deterministic():
    i = sp.Symbol("i", integer=True)
    u, v = arrays("u v")
    expr = v(i) + u(i + 1) + u(i - 1)
    accs = all_array_accesses(expr)
    assert len(accs) == 3
    assert accs == all_array_accesses(expr)  # stable


def test_accesses_of_filters_by_function():
    i = sp.Symbol("i", integer=True)
    u, v = arrays("u v")
    expr = v(i) + u(i + 1)
    assert accesses_of(expr, [u]) == [u(i + 1)]
