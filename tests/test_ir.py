"""Unit tests for the loop IR and lowering."""

import sympy as sp

from repro.core import Statement, make_loop_nest
from repro.ir import (
    Assign,
    Block,
    Comment,
    Guard,
    Loop,
    function_from_nests,
    loopnest_to_ir,
    statement_to_ir,
)

i, j = sp.symbols("i j", integer=True)
n = sp.Symbol("n", integer=True)
C = sp.Symbol("C", real=True)
u, r = sp.Function("u"), sp.Function("r")


def test_statement_to_assign():
    node = statement_to_ir(Statement(lhs=r(i), rhs=u(i - 1), op="+="))
    assert isinstance(node, Assign)
    assert node.target == "r" and node.op == "+="
    assert node.indices == (i,)


def test_guarded_statement_wraps_in_guard():
    st = Statement(lhs=r(i), rhs=u(i), op="+=", guard=sp.Ge(i, 2))
    node = statement_to_ir(st)
    assert isinstance(node, Guard)
    assert isinstance(node.body[0], Assign)


def test_lowering_produces_loop_tree():
    nest = make_loop_nest(
        lhs=r(i, j), rhs=u(i - 1, j), counters=[i, j],
        bounds={i: [1, n - 2], j: [1, n - 2]},
    )
    node = loopnest_to_ir(nest)
    assert isinstance(node, Loop)
    assert node.counter == i and node.parallel
    inner = node.body[0]
    assert isinstance(inner, Loop) and inner.counter == j and not inner.parallel


def test_single_iteration_loops_unrolled():
    """Remainder loops with one iteration become straight-line statements,
    as in the unrolled boundary updates of Section 3.2."""
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i - 1), counters=[i], bounds={i: [n - 1, n - 1]}
    )
    node = loopnest_to_ir(nest)
    assert isinstance(node, Assign)
    assert node.indices == (n - 1,)
    assert node.rhs == u(n - 2)


def test_unroll_disabled_keeps_loop():
    nest = make_loop_nest(
        lhs=r(i), rhs=u(i - 1), counters=[i], bounds={i: [n - 1, n - 1]}
    )
    node = loopnest_to_ir(nest, unroll_single=False)
    assert isinstance(node, Loop)
    assert node.is_single_iteration


def test_parallel_flag_off():
    nest = make_loop_nest(lhs=r(i), rhs=u(i - 1), counters=[i], bounds={i: [1, n - 1]})
    node = loopnest_to_ir(nest, parallel=False)
    assert isinstance(node, Loop) and not node.parallel


def test_function_from_nests_collects_interface():
    nest = make_loop_nest(
        lhs=r(i), rhs=C * u(i - 1), counters=[i], bounds={i: [1, n - 1]}, name="k1"
    )
    fn = function_from_nests("foo", [nest])
    assert fn.name == "foo"
    assert fn.array_ranks == {"r": 1, "u": 1}
    assert fn.sizes == (n,)
    assert fn.scalars == (C,)
    assert isinstance(fn.body[0], Comment)  # nest name comment


def test_mixed_unrolled_and_looped_nests():
    a = make_loop_nest(lhs=r(i), rhs=u(i - 1), counters=[i], bounds={i: [0, 0]})
    b = make_loop_nest(lhs=r(i), rhs=u(i + 1), counters=[i], bounds={i: [1, n - 1]})
    fn = function_from_nests("f", [a, b])
    kinds = [type(x) for x in fn.body]
    assert Assign in kinds and Loop in kinds
